//! A single stored relation: a set of tuples with hash indexes.
//!
//! The chase and the homomorphism search spend almost all of their time
//! asking "which tuples of `R` have value `v` at position `i`?". Every
//! relation therefore maintains one hash index per attribute, mapping a
//! value to the set of row ids carrying it at that position.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A set of same-arity tuples with per-attribute value indexes.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: u16,
    /// Insertion-ordered rows; `None` marks a deleted row (rows are only
    /// deleted by egd-driven value substitution, which re-inserts the
    /// rewritten tuple).
    rows: Vec<Option<Tuple>>,
    /// Membership set over live rows.
    set: HashSet<Tuple>,
    /// `index[i][v]` = row ids with value `v` at attribute `i`.
    index: Vec<HashMap<Value, Vec<u32>>>,
    /// Tombstoned row slots available for reuse.
    free: Vec<u32>,
    live: usize,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: u16) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            set: HashSet::new(),
            index: (0..arity).map(|_| HashMap::new()).collect(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// The arity of this relation.
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a tuple; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity as usize,
            "arity mismatch inserting {t:?}"
        );
        if self.set.contains(&t) {
            return false;
        }
        let row = match self.free.pop() {
            Some(r) => r,
            None => u32::try_from(self.rows.len()).expect("relation overflow"),
        };
        for (i, v) in t.values().iter().enumerate() {
            self.index[i].entry(*v).or_default().push(row);
        }
        self.set.insert(t.clone());
        if (row as usize) < self.rows.len() {
            self.rows[row as usize] = Some(t);
        } else {
            self.rows.push(Some(t));
        }
        self.live += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.set.contains(t)
    }

    /// Remove a tuple; returns `true` if it was present. The row's index
    /// entries are deleted eagerly so long-running insert/remove cycles
    /// (the search solvers backtrack millions of times) do not accumulate
    /// tombstones in the per-attribute indexes.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.set.remove(t) {
            return false;
        }
        // Locate the live row via the first attribute's index (arity-0
        // relations hold at most one tuple; scan directly).
        let row = if self.arity == 0 {
            self.rows.iter().position(|r| r.as_ref() == Some(t))
        } else {
            self.index[0]
                .get(&t.get(0))
                .into_iter()
                .flatten()
                .copied()
                .find(|r| self.rows[*r as usize].as_ref() == Some(t))
                .map(|r| r as usize)
        };
        let row = row.expect("set and rows out of sync");
        // Row ids are handed out as u32, so a live row index always fits.
        let row32 = u32::try_from(row).expect("row index exceeds u32 id space");
        self.unindex_row(row32, t);
        self.rows[row] = None;
        self.free.push(row32);
        self.live -= 1;
        true
    }

    /// Delete the index entries of a row about to be tombstoned.
    fn unindex_row(&mut self, row: u32, t: &Tuple) {
        for (i, v) in t.values().iter().enumerate() {
            if let Some(list) = self.index[i].get_mut(v) {
                if let Some(pos) = list.iter().position(|r| *r == row) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.index[i].remove(v);
                }
            }
        }
    }

    /// Iterate over live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// Row ids of live tuples having `v` at attribute `attr`. The returned
    /// ids are valid arguments to [`Relation::row`].
    pub fn rows_with(&self, attr: u16, v: Value) -> impl Iterator<Item = u32> + '_ {
        self.index[attr as usize]
            .get(&v)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |r| self.rows[*r as usize].is_some())
    }

    /// Number of live rows having `v` at attribute `attr` — an upper bound
    /// usable as a selectivity estimate (deleted rows may inflate it
    /// slightly; we accept that for O(1) cost).
    pub fn count_with(&self, attr: u16, v: Value) -> usize {
        self.index[attr as usize].get(&v).map_or(0, Vec::len)
    }

    /// The tuple at row id `r`, if live.
    pub fn row(&self, r: u32) -> Option<&Tuple> {
        self.rows.get(r as usize).and_then(Option::as_ref)
    }

    /// Replace every occurrence of value `from` by `to` in all tuples.
    /// Rewritten tuples that collide with existing ones are merged.
    pub fn substitute(&mut self, from: Value, to: Value) {
        if from == to {
            return;
        }
        // Collect affected rows via the indexes rather than scanning.
        let mut affected: Vec<u32> = Vec::new();
        for attr in 0..self.arity {
            for r in self.index[attr as usize].get(&from).into_iter().flatten() {
                if self.rows[*r as usize].is_some() {
                    affected.push(*r);
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut rewritten: Vec<Tuple> = Vec::with_capacity(affected.len());
        for r in affected {
            let old = self.rows[r as usize].take().expect("checked live");
            self.set.remove(&old);
            self.live -= 1;
            if let Some(newt) = old.replaced(from, to) {
                self.unindex_row(r, &old);
                self.free.push(r);
                rewritten.push(newt);
            } else {
                // Index said the row contained `from` but it no longer does
                // (stale entry): keep the row.
                self.set.insert(old.clone());
                self.rows[r as usize] = Some(old);
                self.live += 1;
            }
        }
        for t in rewritten {
            self.insert(t);
        }
    }

    /// All values occurring anywhere in the relation.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.iter().flat_map(|t| t.values().iter().copied())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.live == other.live && self.set == other.set
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert!(!r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a"]));
    }

    #[test]
    fn index_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        r.insert(Tuple::consts(["d", "b"]));
        let rows: Vec<_> = r
            .rows_with(0, Value::constant("a"))
            .filter_map(|i| r.row(i))
            .cloned()
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.count_with(1, Value::constant("b")), 2);
        assert_eq!(r.count_with(1, Value::constant("zzz")), 0);
    }

    #[test]
    fn substitute_rewrites_and_merges() {
        let n = Value::Null(NullId(0));
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![n, Value::constant("b")]));
        r.insert(Tuple::consts(["a", "b"]));
        assert_eq!(r.len(), 2);
        // Substituting the null by "a" makes the two tuples collide.
        r.substitute(n, Value::constant("a"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    fn remove_deletes_and_keeps_index_consistent() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        assert!(r.remove(&Tuple::consts(["a", "b"])));
        assert!(!r.remove(&Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&Tuple::consts(["a", "b"])));
        // Index lookups skip the tombstone.
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 1);
        // Re-insertion works after removal.
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 2);
    }

    #[test]
    fn substitute_noop_when_absent() {
        let mut r = Relation::new(1);
        r.insert(Tuple::consts(["x"]));
        r.substitute(Value::constant("q"), Value::constant("z"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["x"])));
    }

    #[test]
    fn substitute_handles_repeated_occurrences() {
        let n = Value::Null(NullId(5));
        let mut r = Relation::new(3);
        r.insert(Tuple::new(vec![n, n, Value::constant("c")]));
        r.substitute(n, Value::constant("z"));
        assert!(r.contains(&Tuple::consts(["z", "z", "c"])));
        assert_eq!(r.len(), 1);
        // Index remains usable after substitution.
        assert_eq!(r.rows_with(0, Value::constant("z")).count(), 1);
        assert_eq!(r.rows_with(0, n).count(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(Tuple::consts(["x"]));
        a.insert(Tuple::consts(["y"]));
        let mut b = Relation::new(1);
        b.insert(Tuple::consts(["y"]));
        b.insert(Tuple::consts(["x"]));
        assert_eq!(a, b);
    }
}
