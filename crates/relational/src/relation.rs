//! A single stored relation: a set of tuples with hash indexes.
//!
//! The chase and the homomorphism search spend almost all of their time
//! asking "which tuples of `R` have value `v` at position `i`?". Every
//! relation therefore maintains one hash index per attribute, mapping a
//! value to the set of row ids carrying it at that position.
//!
//! Rows additionally carry an *insertion epoch* (a monotone `u64` stamped
//! by the caller, see [`crate::instance::Instance::bump_epoch`]). Because
//! row ids are handed out in insertion order and never reused, the epoch
//! sequence is non-decreasing and the rows inserted at or after a given
//! epoch form a suffix of the row vector — the *delta view* the semi-naive
//! chase enumerates by binary search ([`Relation::rows_in_window`]).
//!
//! Deletion is lazy: [`Relation::remove`] tombstones the slot and leaves
//! the index entries in place, but per-bucket dead counters trigger a
//! bucket compaction once dead entries reach half the bucket, and the whole
//! relation is rebuilt (invalidating outstanding row ids) once dead slots
//! outnumber live ones. Amortized, insert/remove cycles are O(arity) and
//! never grow memory without bound.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Slot count below which full-relation compaction is not worth running.
const COMPACT_MIN_SLOTS: usize = 32;

/// A set of same-arity tuples with per-attribute value indexes and
/// insertion-epoch stamps.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: u16,
    /// Insertion-ordered rows; `None` marks a deleted row. Slots are never
    /// reused — a full compaction rebuilds the vector instead, so a live
    /// row id always refers to the tuple it was handed out for.
    rows: Vec<Option<Tuple>>,
    /// Insertion epoch of each row, parallel to `rows` and non-decreasing.
    epochs: Vec<u64>,
    /// Membership set over live rows.
    set: HashSet<Tuple>,
    /// `index[i][v]` = row ids with value `v` at attribute `i`.
    index: Vec<HashMap<Value, Vec<u32>>>,
    /// `dead[i][v]` = how many ids in `index[i][v]` point at tombstones.
    dead_in_bucket: Vec<HashMap<Value, u32>>,
    /// Number of tombstoned slots in `rows`.
    dead: usize,
    live: usize,
    /// Total row ids stored across all index buckets, dead ones included.
    /// Maintained incrementally so [`Relation::approx_heap_bytes`] is O(1):
    /// inserts add `arity`, bucket compactions subtract what they drop, and
    /// a full rebuild resets it to `live * arity`.
    index_entries: usize,
    /// Largest epoch stamped so far; later inserts are clamped up to it so
    /// `epochs` stays sorted.
    last_epoch: u64,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: u16) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            epochs: Vec::new(),
            set: HashSet::new(),
            index: (0..arity).map(|_| HashMap::new()).collect(),
            dead_in_bucket: (0..arity).map(|_| HashMap::new()).collect(),
            dead: 0,
            live: 0,
            index_entries: 0,
            last_epoch: 0,
        }
    }

    /// The arity of this relation.
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a tuple stamped with the relation's current epoch; returns
    /// `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.insert_at(t, self.last_epoch)
    }

    /// Insert a tuple stamped with insertion epoch `epoch` (clamped up to
    /// the largest epoch already stamped, so epochs stay monotone); returns
    /// `true` if it was not already present. Re-inserting an existing tuple
    /// keeps its original epoch: a re-derived fact is not a delta fact.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert_at(&mut self, t: Tuple, epoch: u64) -> bool {
        assert_eq!(
            t.arity(),
            self.arity as usize,
            "arity mismatch inserting {t:?}"
        );
        if self.set.contains(&t) {
            return false;
        }
        let epoch = epoch.max(self.last_epoch);
        self.last_epoch = epoch;
        let row = u32::try_from(self.rows.len()).expect("relation overflow");
        for (i, v) in t.values().iter().enumerate() {
            self.index[i].entry(*v).or_default().push(row);
        }
        self.index_entries += self.arity as usize;
        self.set.insert(t.clone());
        self.rows.push(Some(t));
        self.epochs.push(epoch);
        self.live += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.set.contains(t)
    }

    /// Remove a tuple; returns `true` if it was present. Removal is lazy —
    /// the slot is tombstoned in O(arity) — with two compaction triggers
    /// that keep long insert/remove cycles (the search solvers backtrack
    /// millions of times) from accumulating garbage: an index bucket is
    /// rebuilt once half its ids are dead, and the whole relation is
    /// rebuilt once dead slots outnumber live ones.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.set.remove(t) {
            return false;
        }
        // Locate the live row via the first attribute's index (arity-0
        // relations hold at most one tuple; scan directly).
        let row = if self.arity == 0 {
            self.rows
                .iter()
                .position(|r| r.as_ref() == Some(t))
                .map(|r| u32::try_from(r).expect("row index exceeds u32 id space"))
        } else {
            self.index[0]
                .get(&t.get(0))
                .into_iter()
                .flatten()
                .copied()
                .find(|r| self.rows[*r as usize].as_ref() == Some(t))
        };
        let row = row.expect("set and rows out of sync");
        self.kill_row(row);
        self.maybe_compact_storage();
        true
    }

    /// Tombstone a live row: clear the slot and bump the dead counters of
    /// the buckets its values live in, compacting any bucket that crossed
    /// the half-dead threshold. The membership `set` entry must already be
    /// gone. Row ids stay valid (no slots move).
    fn kill_row(&mut self, row: u32) {
        let t = self.rows[row as usize].take().expect("killing a dead row");
        self.live -= 1;
        self.dead += 1;
        for (i, v) in t.values().iter().enumerate() {
            let bucket_len = self.index[i].get(v).map_or(0, Vec::len);
            let dead = self.dead_in_bucket[i].entry(*v).or_insert(0);
            *dead += 1;
            if 2 * (*dead as usize) >= bucket_len {
                // Compact: retain ids of live rows only. Entries of live
                // rows are always accurate (tuples are immutable and slots
                // are never reused), so liveness is the whole check.
                let rows = &self.rows;
                if let Some(bucket) = self.index[i].get_mut(v) {
                    let before = bucket.len();
                    bucket.retain(|r| rows[*r as usize].is_some());
                    self.index_entries -= before - bucket.len();
                    if bucket.is_empty() {
                        self.index[i].remove(v);
                    }
                }
                self.dead_in_bucket[i].remove(v);
            }
        }
    }

    /// Rebuild rows, epochs, and indexes keeping live rows in insertion
    /// order, once tombstones outnumber live rows. Invalidates outstanding
    /// row ids — callers must not hold ids across `&mut self` calls.
    fn maybe_compact_storage(&mut self) {
        if self.rows.len() < COMPACT_MIN_SLOTS || 2 * self.dead <= self.rows.len() {
            return;
        }
        let old_rows = std::mem::take(&mut self.rows);
        let old_epochs = std::mem::take(&mut self.epochs);
        for m in &mut self.index {
            m.clear();
        }
        for m in &mut self.dead_in_bucket {
            m.clear();
        }
        self.rows.reserve(self.live);
        self.epochs.reserve(self.live);
        for (slot, t) in old_rows.into_iter().enumerate() {
            let Some(t) = t else { continue };
            let row = u32::try_from(self.rows.len()).expect("relation overflow");
            for (i, v) in t.values().iter().enumerate() {
                self.index[i].entry(*v).or_default().push(row);
            }
            self.rows.push(Some(t));
            self.epochs.push(old_epochs[slot]);
        }
        self.index_entries = self.live * self.arity as usize;
        self.dead = 0;
    }

    /// Iterate over live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// Row ids of live tuples having `v` at attribute `attr`. The returned
    /// ids are valid arguments to [`Relation::row`] until the next `&mut`
    /// call (a compaction may renumber rows).
    pub fn rows_with(&self, attr: u16, v: Value) -> impl Iterator<Item = u32> + '_ {
        self.index[attr as usize]
            .get(&v)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |r| self.rows[*r as usize].is_some())
    }

    /// Number of live rows having `v` at attribute `attr`. Exact: the
    /// per-bucket dead counters make up for the lazily deleted ids.
    pub fn count_with(&self, attr: u16, v: Value) -> usize {
        let total = self.index[attr as usize].get(&v).map_or(0, Vec::len);
        let dead = self.dead_in_bucket[attr as usize]
            .get(&v)
            .copied()
            .unwrap_or(0) as usize;
        total - dead
    }

    /// The tuple at row id `r`, if live.
    pub fn row(&self, r: u32) -> Option<&Tuple> {
        self.rows.get(r as usize).and_then(Option::as_ref)
    }

    /// The insertion epoch of row id `r` (dead rows keep their stamp).
    pub fn epoch_of(&self, r: u32) -> u64 {
        self.epochs[r as usize]
    }

    /// First row id whose epoch is `>= epoch` (epochs are non-decreasing,
    /// so all rows from here on belong to the suffix stamped at or after
    /// `epoch`).
    fn first_row_at(&self, epoch: u64) -> usize {
        self.epochs.partition_point(|e| *e < epoch)
    }

    /// Upper bound on the number of live rows with epoch in `[lo, hi)`
    /// (counts tombstones; O(log n)).
    pub fn window_size(&self, lo: u64, hi: u64) -> usize {
        self.first_row_at(hi).saturating_sub(self.first_row_at(lo))
    }

    /// Live rows whose insertion epoch lies in `[lo, hi)`, as
    /// `(row id, tuple)` pairs in insertion order — the delta view.
    pub fn rows_in_window(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u32, &Tuple)> {
        let start = self.first_row_at(lo);
        let end = self.first_row_at(hi);
        self.rows[start..end]
            .iter()
            .enumerate()
            .filter_map(move |(off, t)| {
                let row = u32::try_from(start + off).expect("relation overflow");
                t.as_ref().map(|t| (row, t))
            })
    }

    /// Total slot count including tombstones (storage introspection, used
    /// by the compaction regression tests).
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of index entries including dead ones (storage
    /// introspection, used by the compaction regression tests). O(1):
    /// reads the incrementally maintained counter.
    pub fn index_entry_count(&self) -> usize {
        debug_assert_eq!(
            self.index_entries,
            self.index
                .iter()
                .flat_map(|m| m.values())
                .map(Vec::len)
                .sum::<usize>(),
            "index_entries counter out of sync"
        );
        self.index_entries
    }

    /// Estimated heap footprint of this relation in bytes, O(1).
    ///
    /// This is the figure the runtime governor charges against a memory
    /// budget, so it is maintained from incremental counters rather than
    /// measured: row/epoch slots (tombstones included — their storage is
    /// still allocated), one shared tuple allocation per live row (the
    /// membership set holds a second `Arc` to the same buffer, not a
    /// copy), hash-set entries with load-factor slack, and index ids with
    /// amortized per-bucket overhead. Accurate to small constant factors,
    /// monotone in the actual footprint — which is all budget enforcement
    /// needs.
    pub fn approx_heap_bytes(&self) -> usize {
        /// `rows` slot (`Option<Tuple>`, niche-packed) + `epochs` slot.
        const SLOT: usize = 16;
        /// `Arc` strong/weak counts preceding a tuple's values.
        const TUPLE_HEADER: usize = 16;
        /// Hash-set entry: the `Tuple` pointer plus load-factor slack.
        const SET_ENTRY: usize = 12;
        /// Index id (`u32`) plus amortized bucket/key overhead.
        const INDEX_ENTRY: usize = 12;
        let value = std::mem::size_of::<Value>();
        self.rows.len() * SLOT
            + self.live * (TUPLE_HEADER + self.arity as usize * value + SET_ENTRY)
            + self.index_entries * INDEX_ENTRY
    }

    /// Replace every occurrence of value `from` by `to` in all tuples.
    /// Rewritten tuples that collide with existing ones are merged, and are
    /// stamped with the relation's current epoch.
    pub fn substitute(&mut self, from: Value, to: Value) {
        self.substitute_at(from, to, self.last_epoch);
    }

    /// [`Relation::substitute`] stamping rewritten tuples at `epoch`.
    pub fn substitute_at(&mut self, from: Value, to: Value, epoch: u64) {
        if from == to {
            return;
        }
        self.rewrite_values(
            std::slice::from_ref(&from),
            |v| if v == from { to } else { v },
            epoch,
        );
    }

    /// Rewrite every tuple containing one of the `touched` values through
    /// `resolve`, re-inserting the images stamped at `epoch` (targeted
    /// index repair: only the rows reachable from the touched values'
    /// index buckets are visited). Returns the number of rewritten rows.
    /// This is the bulk form of [`Relation::substitute`] used to apply a
    /// whole union-find of egd merges in one pass.
    pub fn rewrite_values(
        &mut self,
        touched: &[Value],
        resolve: impl Fn(Value) -> Value,
        epoch: u64,
    ) -> usize {
        let mut affected: Vec<u32> = Vec::new();
        for attr in 0..self.arity as usize {
            for v in touched {
                affected.extend(
                    self.index[attr]
                        .get(v)
                        .into_iter()
                        .flatten()
                        .copied()
                        .filter(|r| self.rows[*r as usize].is_some()),
                );
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut rewritten: Vec<Tuple> = Vec::new();
        for r in affected {
            let old = self.rows[r as usize].clone().expect("checked live");
            if !old.values().iter().any(|v| resolve(*v) != *v) {
                continue; // stale index entry: the row no longer needs rewriting
            }
            let newt = old.map(&resolve);
            self.set.remove(&old);
            self.kill_row(r);
            rewritten.push(newt);
        }
        let count = rewritten.len();
        for t in rewritten {
            self.insert_at(t, epoch);
        }
        self.maybe_compact_storage();
        count
    }

    /// All values occurring anywhere in the relation.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.iter().flat_map(|t| t.values().iter().copied())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.live == other.live && self.set == other.set
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert!(!r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a"]));
    }

    #[test]
    fn index_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        r.insert(Tuple::consts(["d", "b"]));
        let rows: Vec<_> = r
            .rows_with(0, Value::constant("a"))
            .filter_map(|i| r.row(i))
            .cloned()
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.count_with(1, Value::constant("b")), 2);
        assert_eq!(r.count_with(1, Value::constant("zzz")), 0);
    }

    #[test]
    fn substitute_rewrites_and_merges() {
        let n = Value::Null(NullId(0));
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![n, Value::constant("b")]));
        r.insert(Tuple::consts(["a", "b"]));
        assert_eq!(r.len(), 2);
        // Substituting the null by "a" makes the two tuples collide.
        r.substitute(n, Value::constant("a"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    fn remove_deletes_and_keeps_index_consistent() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        assert!(r.remove(&Tuple::consts(["a", "b"])));
        assert!(!r.remove(&Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&Tuple::consts(["a", "b"])));
        // Index lookups skip the tombstone.
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 1);
        // Re-insertion works after removal.
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 2);
    }

    #[test]
    fn substitute_noop_when_absent() {
        let mut r = Relation::new(1);
        r.insert(Tuple::consts(["x"]));
        r.substitute(Value::constant("q"), Value::constant("z"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["x"])));
    }

    #[test]
    fn substitute_handles_repeated_occurrences() {
        let n = Value::Null(NullId(5));
        let mut r = Relation::new(3);
        r.insert(Tuple::new(vec![n, n, Value::constant("c")]));
        r.substitute(n, Value::constant("z"));
        assert!(r.contains(&Tuple::consts(["z", "z", "c"])));
        assert_eq!(r.len(), 1);
        // Index remains usable after substitution.
        assert_eq!(r.rows_with(0, Value::constant("z")).count(), 1);
        assert_eq!(r.rows_with(0, n).count(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(Tuple::consts(["x"]));
        a.insert(Tuple::consts(["y"]));
        let mut b = Relation::new(1);
        b.insert(Tuple::consts(["y"]));
        b.insert(Tuple::consts(["x"]));
        assert_eq!(a, b);
    }

    #[test]
    fn epochs_partition_the_rows() {
        let mut r = Relation::new(1);
        r.insert_at(Tuple::consts(["a"]), 0);
        r.insert_at(Tuple::consts(["b"]), 1);
        r.insert_at(Tuple::consts(["c"]), 1);
        r.insert_at(Tuple::consts(["d"]), 3);
        let delta: Vec<_> = r.rows_in_window(1, 3).map(|(_, t)| t.clone()).collect();
        assert_eq!(delta, vec![Tuple::consts(["b"]), Tuple::consts(["c"])]);
        assert_eq!(r.window_size(0, 1), 1);
        assert_eq!(r.window_size(3, u64::MAX), 1);
        assert_eq!(r.rows_in_window(0, u64::MAX).count(), 4);
        // Re-inserting an existing tuple does not move it into the delta.
        assert!(!r.insert_at(Tuple::consts(["a"]), 5));
        assert_eq!(r.window_size(4, u64::MAX), 0);
    }

    #[test]
    fn epochs_are_clamped_monotone() {
        let mut r = Relation::new(1);
        r.insert_at(Tuple::consts(["a"]), 7);
        // A lower stamp is clamped up so the epoch sequence stays sorted.
        r.insert_at(Tuple::consts(["b"]), 2);
        assert_eq!(r.epoch_of(1), 7);
        assert_eq!(r.rows_in_window(7, 8).count(), 2);
    }

    #[test]
    fn insert_remove_cycles_do_not_grow_memory() {
        let mut r = Relation::new(2);
        // A few long-lived tuples sharing the churned value at attribute 0.
        for i in 0..4 {
            r.insert(Tuple::consts(["hot", &format!("keep{i}")]));
        }
        for i in 0..10_000 {
            let t = Tuple::consts(["hot", &format!("tmp{}", i % 3)]);
            r.insert(t.clone());
            r.remove(&t);
        }
        assert_eq!(r.len(), 4);
        // Tombstoned slots are compacted away, not accumulated.
        assert!(
            r.slot_count() <= 2 * COMPACT_MIN_SLOTS,
            "{}",
            r.slot_count()
        );
        // Index buckets shed their dead ids too (the "hot" bucket was hit
        // by every cycle).
        assert!(
            r.index_entry_count() <= 4 * COMPACT_MIN_SLOTS,
            "{}",
            r.index_entry_count()
        );
        assert_eq!(r.count_with(0, Value::constant("hot")), 4);
        assert_eq!(r.rows_with(0, Value::constant("hot")).count(), 4);
    }

    #[test]
    fn heap_estimate_tracks_growth_and_compaction() {
        let mut r = Relation::new(2);
        assert_eq!(r.approx_heap_bytes(), 0);
        for i in 0..100 {
            r.insert(Tuple::consts([&format!("a{i}"), "b"]));
        }
        let full = r.approx_heap_bytes();
        // Lower bound: 100 tuples of 2 values can't fit in fewer bytes
        // than their raw value payload.
        assert!(full >= 100 * 2 * std::mem::size_of::<Value>(), "{full}");
        // Deletion eventually gives the memory back (full compaction).
        for i in 0..100 {
            r.remove(&Tuple::consts([&format!("a{i}"), "b"]));
        }
        assert!(
            r.approx_heap_bytes() < full / 2,
            "{}",
            r.approx_heap_bytes()
        );
        // The incremental index counter survived the churn (the
        // `index_entry_count` accessor debug-asserts it against a full
        // recomputation).
        let _ = r.index_entry_count();
    }

    #[test]
    fn index_counter_stays_in_sync_under_rewrites() {
        let n = Value::Null(NullId(9));
        let mut r = Relation::new(2);
        for i in 0..50 {
            r.insert(Tuple::new(vec![n, Value::constant(format!("v{i}"))]));
        }
        r.substitute(n, Value::constant("a"));
        let _ = r.index_entry_count(); // debug-asserts counter consistency
        assert_eq!(r.len(), 50);
    }

    #[test]
    fn compaction_preserves_insertion_order_and_epochs() {
        let mut r = Relation::new(1);
        for i in 0u64..40 {
            r.insert_at(Tuple::consts([&format!("v{i}")]), i);
        }
        for i in 0..30 {
            r.remove(&Tuple::consts([&format!("v{i}")]));
        }
        let left: Vec<_> = r.iter().cloned().collect();
        assert_eq!(left.len(), 10);
        assert_eq!(left[0], Tuple::consts(["v30"]));
        assert_eq!(left[9], Tuple::consts(["v39"]));
        // Epoch windows still line up after the rebuild.
        assert_eq!(r.rows_in_window(35, u64::MAX).count(), 5);
    }
}
