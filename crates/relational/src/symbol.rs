//! Global string interner.
//!
//! Constants, relation names, and variable names are interned once into a
//! process-wide table and referred to by a compact [`Symbol`] id everywhere
//! else. This keeps [`crate::value::Value`] `Copy` (two words) so tuples are
//! flat arrays of ids, and makes equality/hashing of values integer-cheap,
//! which matters in the chase's inner homomorphism loops.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. The id is
/// stable for the lifetime of the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern `s`, returning its symbol.
    pub fn intern(s: &str) -> Symbol {
        interner().intern(s)
    }

    /// The string this symbol interns.
    pub fn as_str(&self) -> String {
        interner().resolve(*self)
    }

    /// Raw id, for use as a dense index where helpful.
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Symbol::index`]: rebuild a symbol from its raw id.
    ///
    /// The id must have come from `index()` on a symbol interned in this
    /// process — resolving a fabricated id panics. This is what lets the
    /// columnar storage unpack a [`crate::value::ValueId`] back into a
    /// value with pure bit arithmetic.
    pub fn from_index(ix: usize) -> Symbol {
        Symbol(u32::try_from(ix).expect("symbol index out of range"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

struct Interner {
    map: RwLock<HashMap<String, u32>>,
    strings: RwLock<Vec<String>>,
}

impl Interner {
    fn intern(&self, s: &str) -> Symbol {
        // Lock poisoning cannot leave the table inconsistent (push + insert
        // happen under the same write lock), so a poisoned lock is recovered.
        let read = self
            .map
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = read.get(s) {
            return Symbol(id);
        }
        drop(read);
        let mut map = self
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check: another thread may have interned between lock drops.
        if let Some(&id) = map.get(s) {
            return Symbol(id);
        }
        let mut strings = self
            .strings
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = u32::try_from(strings.len()).expect("interner overflow");
        strings.push(s.to_owned());
        map.insert(s.to_owned(), id);
        Symbol(id)
    }

    fn resolve(&self, sym: Symbol) -> String {
        self.strings
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)[sym.0 as usize]
            .clone()
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: RwLock::new(HashMap::new()),
        strings: RwLock::new(Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("x1");
        let b = Symbol::intern("x2");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "x1");
        assert_eq!(b.as_str(), "x2");
    }

    #[test]
    fn display_matches_interned_string() {
        let a = Symbol::intern("E");
        assert_eq!(format!("{a}"), "E");
        assert_eq!(format!("{a:?}"), "E");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "hello".into();
        let b: Symbol = String::from("hello").into();
        assert_eq!(a, b);
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("t{}", (i + j) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                let name = s.as_str();
                assert_eq!(Symbol::intern(&name), *s);
            }
        }
    }
}
