//! E2 — Lemma 1: the (solution-aware) chase terminates within a
//! polynomial number of steps on weakly acyclic sets.
//!
//! Sweeps instance size for a weakly acyclic two-stage target tgd chain
//! and records (a) chase steps — the paper's bound is polynomial in |K| —
//! and (b) wall time. Also exercises the solution-aware variant against a
//! pre-built solution, confirming it takes no more steps than the
//! standard chase (its witnesses never create new triggers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_chase::{chase, chase_tgds, solution_aware_chase, ChaseLimits};
use pde_constraints::{parse_dependencies, Dependency};
use pde_relational::{parse_instance, parse_schema, Instance, NullGen};
use std::sync::Arc;

fn schema() -> Arc<pde_relational::Schema> {
    Arc::new(parse_schema("target A/2; target B/2; target C/2;").unwrap())
}

fn deps(schema: &pde_relational::Schema) -> Vec<Dependency> {
    parse_dependencies(
        schema,
        "A(x, y) -> exists z . B(y, z); B(x, y) -> exists z . C(y, z)",
    )
    .unwrap()
}

fn instance(schema: &Arc<pde_relational::Schema>, n: usize) -> Instance {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("A(a{i}, b{i}). "));
    }
    parse_instance(schema, &src).unwrap()
}

fn bench(c: &mut Criterion) {
    let s = schema();
    let d = deps(&s);

    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e02_chase_length");
    for n in [16usize, 32, 64, 128, 256] {
        let inst = instance(&s, n);
        g.bench_with_input(BenchmarkId::new("standard_chase", n), &inst, |b, inst| {
            b.iter(|| {
                let gen = NullGen::new();
                chase(inst.clone(), &d, &gen).steps
            });
        });
        let gen = NullGen::new();
        let res = chase(inst.clone(), &d, &gen);
        assert!(res.is_success());
        // Solution-aware chase against the standard result (which contains
        // the input and satisfies the tgds).
        let sol = res.instance.clone();
        let aware = solution_aware_chase(inst.clone(), &d, &sol, ChaseLimits::default());
        assert!(aware.is_success());
        rows.push((n, res.steps, aware.steps));
    }
    g.finish();
    pde_bench::print_series3(
        "E2: chase steps vs |K| (Lemma 1: polynomial; here 2·n)",
        ("|A|", "standard steps", "solution-aware steps"),
        &rows,
    );

    // Divergence contrast: the same sweep on a weakly *cyclic* tgd hits
    // the step limit proportionally (not run under Criterion; shape only).
    let cyc = parse_dependencies(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
    let inst = instance(&s, 4);
    let gen = NullGen::new();
    let res = pde_chase::chase_with(
        inst,
        &cyc,
        pde_chase::WitnessMode::FreshNulls(&gen),
        ChaseLimits::tight(1000),
    );
    assert_eq!(res.outcome, pde_chase::ChaseOutcome::ResourceExceeded);
    eprintln!(
        "E2 (contrast): non-weakly-acyclic set hit the {}-step guard as expected",
        1000
    );

    // Keep chase_tgds linked into the harness for API parity.
    let _ = chase_tgds;
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
