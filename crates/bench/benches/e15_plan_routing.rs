//! E15 — plan-once solver routing vs. per-call classification.
//!
//! `decide` re-derives the setting's classification (weak acyclicity,
//! `C_tract` membership, solver choice) on every call. `pde plan` moves
//! that work to a one-time static certificate: `plan_setting` + repeated
//! `decide_with_plan` amortizes the analysis across calls. This bench
//! measures the planning cost, the verification cost, and the per-call
//! delta on a small instance where routing overhead is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use pde_analysis::{plan_setting, verify_certificate};
use pde_core::{decide, decide_with_plan};
use pde_workloads::paper::{example1_instances, example1_setting};
use pde_workloads::{clique, graphs};

fn bench(c: &mut Criterion) {
    let setting = example1_setting();
    let [_, _, triangle] = example1_instances(&setting);
    let cert = plan_setting(&setting, triangle.active_domain().len());
    let plan = cert.to_solve_plan();

    let mut g = c.benchmark_group("e15_plan_routing");
    g.bench_function("decide_reclassifies_per_call", |b| {
        b.iter(|| decide(&setting, &triangle).unwrap().exists);
    });
    g.bench_function("decide_with_precomputed_plan", |b| {
        b.iter(|| decide_with_plan(&setting, &triangle, &plan).unwrap().exists);
    });
    g.bench_function("plan_setting_example1", |b| {
        b.iter(|| plan_setting(&setting, triangle.active_domain().len()));
    });
    g.bench_function("verify_certificate_example1", |b| {
        b.iter(|| verify_certificate(&setting, &cert).unwrap());
    });

    // The clique setting has the largest Σts and a 4-ary target relation,
    // so its static analysis is the most expensive in the workload suite.
    let hard = clique::clique_setting();
    let input = clique::clique_instance(&hard, &graphs::Graph::complete(4), 3);
    let hard_cert = plan_setting(&hard, input.active_domain().len());
    let hard_plan = hard_cert.to_solve_plan();
    g.bench_function("decide_reclassifies_per_call_clique", |b| {
        b.iter(|| decide(&hard, &input).unwrap().exists);
    });
    g.bench_function("decide_with_precomputed_plan_clique", |b| {
        b.iter(|| decide_with_plan(&hard, &input, &hard_plan).unwrap().exists);
    });
    g.bench_function("plan_setting_clique", |b| {
        b.iter(|| plan_setting(&hard, input.active_domain().len()));
    });
    g.finish();

    let rows: Vec<(&str, String)> = vec![
        ("example1 regime", cert.regime.to_string()),
        ("example1 solver", cert.recommended_solver.to_string()),
        (
            "example1 budgets",
            format!(
                "steps={} facts={} nodes={}",
                cert.budgets.chase_steps, cert.budgets.chase_facts, cert.budgets.search_nodes
            ),
        ),
        ("clique regime", hard_cert.regime.to_string()),
        ("clique solver", hard_cert.recommended_solver.to_string()),
    ];
    pde_bench::print_series("E15: static plan contents", ("quantity", "value"), &rows);
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
