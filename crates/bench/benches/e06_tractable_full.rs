//! E6 — Theorem 4 / Corollary 1: with full Σst the setting is tractable
//! even when Σts has multi-literal premises and existentials.
//!
//! Same sweep shape as E5 on the full-Σst workload (the condition-2.2 side
//! of `C_tract`), plus a head-to-head against the complete assignment
//! solver on a size where both run — the polynomial algorithm should win
//! and keep winning as sizes grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::{assignment, tractable};
use pde_workloads::full::{full_setting, full_solvable_instance};

fn bench(c: &mut Criterion) {
    let setting = full_setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e06_tractable_full");
    g.sample_size(10);
    for size in [3u32, 4, 6, 8, 10] {
        let input = full_solvable_instance(&setting, 2, size);
        g.bench_with_input(
            BenchmarkId::new("exists_solution", size),
            &input,
            |b, input| {
                b.iter(|| {
                    let out = tractable::exists_solution(&setting, input).unwrap();
                    assert!(out.exists);
                });
            },
        );
        let fast_ms = pde_bench::time_ms(|| {
            let _ = tractable::exists_solution(&setting, &input).unwrap();
        });
        // The complete solver is exact but exponential in the worst case;
        // on these solvable instances it terminates quickly too, yet the
        // polynomial algorithm dominates as sizes grow.
        let slow_ms = pde_bench::time_ms(|| {
            let _ = assignment::solve(&setting, &input).unwrap();
        });
        rows.push((
            format!("2 cliques × {size}"),
            format!("{fast_ms:.2} ms"),
            format!("{slow_ms:.2} ms"),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E6: full-Σst settings — ExistsSolution vs complete search",
        ("instance", "ExistsSolution", "assignment search"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
