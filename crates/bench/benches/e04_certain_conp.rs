//! E4 — Theorem 3 (second half): the data complexity of certain answers
//! is coNP-complete. Uses `q = ∃x P(x,x,x,x)` over the CLIQUE reduction
//! with elements drawn from `V`: `certain(q) = false` iff a `k`-clique
//! exists.
//!
//! Refutation (clique present) stops at the first counterexample solution;
//! confirmation (no clique ⇒ no solutions ⇒ vacuous truth) must exhaust
//! the search space, which is where the coNP shape shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::{certain_answers, GenericLimits};
use pde_workloads::clique::{certain_query, clique_instance_elements_from_v, clique_setting};
use pde_workloads::{has_k_clique, Graph};

fn bench(c: &mut Criterion) {
    let setting = clique_setting();
    let q = certain_query(&setting);
    let k = 3;
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e04_certain_conp");
    g.sample_size(10);
    for n in [3u32, 4, 5, 6] {
        let yes = Graph::planted_clique(n.max(k), 0.15, k, 3);
        let no = Graph::complete_bipartite(n / 2 + 1, n - n / 2); // ≥ k nodes, no K3
        for (label, graph) in [("clique_present", &yes), ("clique_absent", &no)] {
            let input = clique_instance_elements_from_v(&setting, graph, k);
            let expected_certain = !has_k_clique(graph, k);
            g.bench_with_input(BenchmarkId::new(label, n), &input, |b, input| {
                b.iter(|| {
                    let out =
                        certain_answers(&setting, input, &q, GenericLimits::default()).unwrap();
                    assert_eq!(out.certain_bool(), expected_certain);
                    out.certain_bool()
                });
            });
            let ms = pde_bench::time_ms(|| {
                let _ = certain_answers(&setting, &input, &q, GenericLimits::default()).unwrap();
            });
            rows.push((
                format!("n={} {label}", graph.vertex_count()),
                format!("{ms:.2} ms"),
            ));
        }
    }
    g.finish();
    pde_bench::print_series(
        "E4: certain(∃x P(x,x,x,x)) over the CLIQUE reduction (coNP shape)",
        ("case", "time"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
