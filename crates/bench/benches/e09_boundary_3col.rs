//! E9 — §4 boundary: disjunction in Σts conclusions re-encodes
//! 3-COLORABILITY even though the non-disjunctive skeleton satisfies
//! conditions (1) and (2.2). Cross-checked against the direct backtracking
//! colorer, whose time is the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::assignment::solve_disjunctive;
use pde_workloads::threecol::{threecol_instance, threecol_problem};
use pde_workloads::{is_three_colorable, Graph};

fn bench(c: &mut Criterion) {
    let problem = threecol_problem();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e09_boundary_3col");
    g.sample_size(10);
    for (label, graph) in [
        ("C5_yes", Graph::cycle(5)),
        ("C7_yes", Graph::cycle(7)),
        ("K4_no", Graph::complete(4)),
        ("gnp8_yes", Graph::gnp(8, 0.3, 2)),
        ("gnp10", Graph::gnp(10, 0.35, 5)),
    ] {
        let input = threecol_instance(&problem, &graph);
        let expected = is_three_colorable(&graph);
        g.bench_with_input(BenchmarkId::from_parameter(label), &input, |b, input| {
            b.iter(|| {
                let out = solve_disjunctive(&problem, input).unwrap();
                assert_eq!(out.exists, expected);
            });
        });
        let pde_ms = pde_bench::time_ms(|| {
            let _ = solve_disjunctive(&problem, &input).unwrap();
        });
        let direct_ms = pde_bench::time_ms(|| {
            let _ = is_three_colorable(&graph);
        });
        rows.push((
            format!(
                "{label} (n={}, m={})",
                graph.vertex_count(),
                graph.edge_count()
            ),
            format!("{pde_ms:.2} ms"),
            format!("{direct_ms:.4} ms"),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E9: disjunctive Σts re-encodes 3-COLORABILITY",
        ("case", "PDE solver", "direct colorer"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
