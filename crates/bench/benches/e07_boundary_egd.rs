//! E7 — §4 boundary: Σst/Σts satisfy conditions (1) and (2.1) of
//! `C_tract`, yet a single target **egd** makes `SOL(P)` NP-hard again
//! (CLIQUE). The generic witness-chase search is the only complete
//! algorithm; its time explodes on the no-instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::{generic, GenericLimits};
use pde_workloads::boundary::{egd_boundary_instance, egd_boundary_setting};
use pde_workloads::{has_k_clique, Graph};

fn bench(c: &mut Criterion) {
    let setting = egd_boundary_setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e07_boundary_egd");
    g.sample_size(10);
    for (label, graph, k) in [
        ("K3_k3_yes", Graph::complete(3), 3u32),
        ("P3_k3_no", Graph::path(3), 3),
        ("C4_k2_yes", Graph::cycle(4), 2),
        ("K22_k3_no", Graph::complete_bipartite(2, 2), 3),
    ] {
        let input = egd_boundary_instance(&setting, &graph, k);
        let expected = has_k_clique(&graph, k);
        g.bench_with_input(BenchmarkId::new(label, k), &input, |b, input| {
            b.iter(|| {
                let out = generic::solve(&setting, input, GenericLimits::default()).unwrap();
                assert_eq!(out.decided(), Some(expected));
            });
        });
        let out = generic::solve(&setting, &input, GenericLimits::default()).unwrap();
        rows.push((
            label,
            format!("decided={:?}", out.decided()),
            format!(
                "nodes={} ts_prunes={} egd_failures={}",
                out.stats().nodes,
                out.stats().ts_prunes,
                out.stats().egd_failures
            ),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E7: single target egd re-encodes CLIQUE (Σst/Σts tractable alone)",
        ("case", "verdict", "search stats"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
