//! E14 — the §1 motivating scenario at scale: periodic sync rounds from an
//! authoritative protein source into a restrictive university target.
//! LAV Σts ⇒ `ExistsSolution` ⇒ sync cost grows polynomially with the
//! source size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pde_core::tractable;
use pde_workloads::genomics::{genomics_instance, genomics_setting, GenomicsParams};

fn bench(c: &mut Criterion) {
    let setting = genomics_setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e14_genomics");
    g.sample_size(10);
    for proteins in [100u32, 200, 400, 800] {
        let params = GenomicsParams {
            proteins,
            annotations_per_protein: 3,
            organisms: 10,
            go_terms: 200,
            preloaded: proteins / 10,
            rogue: 0,
            seed: 99,
        };
        let input = genomics_instance(&setting, &params);
        g.throughput(Throughput::Elements(u64::from(proteins)));
        g.bench_with_input(
            BenchmarkId::new("sync_round", proteins),
            &input,
            |b, input| {
                b.iter(|| {
                    let out = tractable::exists_solution(&setting, input).unwrap();
                    assert!(out.exists);
                });
            },
        );
        let out = tractable::exists_solution(&setting, &input).unwrap();
        rows.push((
            proteins,
            input.fact_count(),
            format!(
                "target gains {} facts in {} chase steps",
                out.stats.jcan_facts, out.stats.chase_steps
            ),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E14: genomics sync rounds (LAV ⇒ polynomial)",
        ("proteins", "|I,J| facts", "outcome"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
