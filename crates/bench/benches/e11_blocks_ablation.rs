//! E11 — Theorems 5–6 / Prop. 1 ablation: why `ExistsSolution` checks
//! homomorphisms **block by block**.
//!
//! The adversarial family: `b` independent 2-null blocks that each map
//! into the target graph in many ways, followed by one unsatisfiable
//! block (a 2-cycle pattern over an acyclic target). Blockwise checking
//! rejects in time linear in `b`; the whole-instance search (especially
//! without dynamic atom ordering) backtracks across block boundaries and
//! blows up exponentially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::blocks::blockwise_hom_exists;
use pde_relational::{
    instance_as_atoms, instance_hom_exists, parse_instance, parse_schema, Assignment, HomConfig,
    Instance,
};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Pattern: `b` satisfiable blocks E(?2i, ?2i+1), then E(?x, ?y), E(?y, ?x).
fn pattern(schema: &Arc<pde_relational::Schema>, b: usize) -> Instance {
    let mut src = String::new();
    for i in 0..b {
        src.push_str(&format!("E(?{}, ?{}). ", 2 * i, 2 * i + 1));
    }
    let x = 2 * b;
    let y = 2 * b + 1;
    src.push_str(&format!("E(?{x}, ?{y}). E(?{y}, ?{x})."));
    parse_instance(schema, &src).unwrap()
}

/// Target: an acyclic tournament-ish graph (no 2-cycles) on `n` nodes.
fn target(schema: &Arc<pde_relational::Schema>, n: usize) -> Instance {
    let mut src = String::new();
    for i in 0..n {
        for j in (i + 1)..n {
            src.push_str(&format!("E(v{i}, v{j}). "));
        }
    }
    parse_instance(schema, &src).unwrap()
}

fn hom_exists_with(pat: &Instance, tgt: &Instance, config: HomConfig) -> bool {
    let atoms = instance_as_atoms(pat);
    let mut found = false;
    let _ = pde_relational::for_each_hom_with(&atoms, tgt, &Assignment::new(), config, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

fn bench(c: &mut Criterion) {
    let schema = Arc::new(parse_schema("source E/2;").unwrap());
    let tgt = target(&schema, 6);
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e11_blocks_ablation");
    g.sample_size(10);
    for b in [1usize, 2, 3, 4] {
        let pat = pattern(&schema, b);
        // Sanity: no homomorphism exists (last block needs a 2-cycle).
        assert!(!instance_hom_exists(&pat, &tgt));
        g.bench_with_input(BenchmarkId::new("blockwise", b), &pat, |bch, pat| {
            bch.iter(|| {
                assert!(!blockwise_hom_exists(pat, &tgt));
            });
        });
        // The whole-instance search is exponential in b on this family
        // (that is the experiment's point) — keep its sizes small.
        g.bench_with_input(BenchmarkId::new("whole_instance", b), &pat, |bch, pat| {
            bch.iter(|| {
                assert!(!instance_hom_exists(pat, &tgt));
            });
        });
        g.bench_with_input(
            BenchmarkId::new("whole_instance_no_reorder", b),
            &pat,
            |bch, pat| {
                bch.iter(|| {
                    assert!(!hom_exists_with(
                        pat,
                        &tgt,
                        HomConfig {
                            use_index: true,
                            reorder_atoms: false
                        }
                    ));
                });
            },
        );
        let block_ms = pde_bench::time_ms(|| {
            let _ = blockwise_hom_exists(&pat, &tgt);
        });
        let whole_ms = pde_bench::time_ms(|| {
            let _ = hom_exists_with(
                &pat,
                &tgt,
                HomConfig {
                    use_index: true,
                    reorder_atoms: false,
                },
            );
        });
        rows.push((
            format!("{b} blocks + 1 bad"),
            format!("{block_ms:.3} ms"),
            format!("{whole_ms:.3} ms"),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E11: block decomposition ablation (Prop. 1 / Thm. 6)",
        ("pattern", "blockwise", "whole (no reorder)"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
