//! E10 — §3 contrast: with Σts = ∅ (plain data exchange) the chase decides
//! everything in polynomial time, and with Σt = ∅ solutions always exist.
//!
//! Sweeps the same instance sizes as the NP experiments: the chase stays
//! polynomial where the PDE solvers explode, which is the whole point of
//! the paper's complexity comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::{data_exchange, PdeSetting};
use pde_relational::parse_instance;

fn setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2; target K/2;",
        "E(x, y) -> exists z . H(x, z), K(z, y)",
        "",
        "H(x, y) -> K(x, y)",
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let p = setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e10_data_exchange");
    g.sample_size(10);
    for n in [32usize, 64, 128, 256, 512] {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("E(a{i}, b{i}). "));
        }
        let input = parse_instance(p.schema(), &src).unwrap();
        g.bench_with_input(BenchmarkId::new("chase", n), &input, |b, input| {
            b.iter(|| {
                let out = data_exchange::solve_data_exchange(&p, input).unwrap();
                assert!(out.exists, "DE with weakly acyclic Σt always solvable here");
                out.chase_steps
            });
        });
        let out = data_exchange::solve_data_exchange(&p, &input).unwrap();
        rows.push((n, out.chase_steps, out.canonical.unwrap().fact_count()));
    }
    g.finish();
    pde_bench::print_series3(
        "E10: data exchange chase (polynomial; solutions always exist)",
        ("|E|", "chase steps", "canonical facts"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
