//! E16 — semi-naive vs naive chase engine. Two chase-heavy workloads:
//!
//! * **clique/egd**: the §4 egd-boundary dependencies (Σst ∪ Σt) chased on
//!   complete graphs. Every `D` edge mints two nulls and the two egds
//!   merge them per-anchor, so the naive engine pays a full violation
//!   re-scan plus a whole-instance rewrite per merge, while the semi-naive
//!   engine batches each round's merges in one union-find and one targeted
//!   rewrite.
//! * **genomics**: the §1 sync scenario's Σst chase. One productive round
//!   followed by a fixpoint round; semi-naive skips the full re-enumeration
//!   of already-seen triggers in the second round.
//!
//! The differential property tests guarantee the engines agree; this
//! experiment measures what that agreement costs.
//!
//! A third **governed** arm re-runs the semi-naive engine under a
//! `Governor` with generous (never-binding) wall-clock and memory budgets,
//! so the per-round deadline checks and byte accounting are live. The
//! summary table reports its overhead against the ungoverned semi-naive
//! run; the robustness acceptance bar is < 3%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_chase::{
    chase_governed_with, chase_naive_with, chase_seminaive_with, ChaseEngine, ChaseLimits,
    ChaseResult, WitnessMode,
};
use pde_constraints::Dependency;
use pde_core::PdeSetting;
use pde_relational::{Instance, NullGen};
use pde_runtime::{Governor, GovernorConfig};
use pde_workloads::boundary::{egd_boundary_instance, egd_boundary_setting};
use pde_workloads::genomics::{genomics_instance, genomics_setting, GenomicsParams};
use pde_workloads::Graph;
use std::time::Duration;

/// Σst ∪ Σt of a setting as one chaseable dependency list.
fn forward_deps(setting: &PdeSetting) -> Vec<Dependency> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect()
}

fn run(engine: &str, input: &Instance, deps: &[Dependency]) -> ChaseResult {
    let gen = NullGen::new();
    let limits = ChaseLimits::default();
    match engine {
        "naive" => chase_naive_with(input.clone(), deps, WitnessMode::FreshNulls(&gen), limits),
        "governed" => {
            // Generous budgets that never bind, so only the check/accounting
            // overhead is measured.
            let governor = Governor::new(GovernorConfig {
                deadline: Some(Duration::from_secs(3600)),
                memory_budget_bytes: Some(1 << 30),
                cancel: None,
            });
            chase_governed_with(
                input.clone(),
                deps,
                WitnessMode::FreshNulls(&gen),
                limits,
                ChaseEngine::Seminaive,
                &governor,
            )
        }
        _ => chase_seminaive_with(input.clone(), deps, WitnessMode::FreshNulls(&gen), limits),
    }
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    // Perf-trajectory record: flat named timings plus a metrics snapshot
    // of the semi-naive engine counters, written as BENCH_E16.json.
    let mut measurements: Vec<(String, f64)> = Vec::new();
    let mut metrics = pde_trace::MetricsRegistry::new();

    // Workload 1: egd-heavy clique boundary chase.
    let setting = egd_boundary_setting();
    let deps = forward_deps(&setting);
    let mut grp = c.benchmark_group("e16_seminaive_chase/clique");
    grp.sample_size(10);
    for k in [6u32, 10, 14, 18] {
        // `D` is the k-element inequality relation, so the merge workload
        // grows with k: Σst mints 2 nulls per D fact and the two egds
        // collapse them per anchor.
        let input = egd_boundary_instance(&setting, &Graph::complete(3), k);
        for engine in ["naive", "seminaive", "governed"] {
            grp.bench_with_input(BenchmarkId::new(engine, k), &input, |b, input| {
                b.iter(|| {
                    let res = run(engine, input, &deps);
                    assert!(res.is_success());
                });
            });
        }
        let naive_ms = pde_bench::time_ms(|| {
            let _ = run("naive", &input, &deps);
        });
        let semi_ms = pde_bench::time_ms(|| {
            let _ = run("seminaive", &input, &deps);
        });
        let gov_ms = pde_bench::time_ms(|| {
            let _ = run("governed", &input, &deps);
        });
        let stats = run("seminaive", &input, &deps).stats;
        measurements.push((format!("clique_k{k}.naive_ms"), naive_ms));
        measurements.push((format!("clique_k{k}.seminaive_ms"), semi_ms));
        measurements.push((format!("clique_k{k}.governed_ms"), gov_ms));
        stats.export_metrics(&mut metrics);
        rows.push((
            format!("clique k={k}"),
            format!(
                "{naive_ms:.2} / {semi_ms:.2} ({:.1}x), gov {:+.1}%",
                naive_ms / semi_ms,
                (gov_ms / semi_ms - 1.0) * 100.0
            ),
            format!(
                "rounds={} merges={} skipped={}",
                stats.rounds, stats.egd_merges, stats.skipped_by_delta
            ),
        ));
    }
    grp.finish();

    // Workload 2: genomics Σst sync chase.
    let setting = genomics_setting();
    let deps = forward_deps(&setting);
    let mut grp = c.benchmark_group("e16_seminaive_chase/genomics");
    grp.sample_size(10);
    for proteins in [200u32, 400, 800] {
        let params = GenomicsParams {
            proteins,
            annotations_per_protein: 3,
            organisms: 10,
            go_terms: 200,
            preloaded: proteins / 10,
            rogue: 0,
            seed: 99,
        };
        let input = genomics_instance(&setting, &params);
        for engine in ["naive", "seminaive", "governed"] {
            grp.bench_with_input(BenchmarkId::new(engine, proteins), &input, |b, input| {
                b.iter(|| {
                    let res = run(engine, input, &deps);
                    assert!(res.is_success());
                });
            });
        }
        let naive_ms = pde_bench::time_ms(|| {
            let _ = run("naive", &input, &deps);
        });
        let semi_ms = pde_bench::time_ms(|| {
            let _ = run("seminaive", &input, &deps);
        });
        let gov_ms = pde_bench::time_ms(|| {
            let _ = run("governed", &input, &deps);
        });
        let stats = run("seminaive", &input, &deps).stats;
        measurements.push((format!("genomics_{proteins}p.naive_ms"), naive_ms));
        measurements.push((format!("genomics_{proteins}p.seminaive_ms"), semi_ms));
        measurements.push((format!("genomics_{proteins}p.governed_ms"), gov_ms));
        stats.export_metrics(&mut metrics);
        rows.push((
            format!("genomics {proteins}p"),
            format!(
                "{naive_ms:.2} / {semi_ms:.2} ({:.1}x), gov {:+.1}%",
                naive_ms / semi_ms,
                (gov_ms / semi_ms - 1.0) * 100.0
            ),
            format!(
                "rounds={} fired={} skipped={}",
                stats.rounds, stats.triggers_fired, stats.skipped_by_delta
            ),
        ));
    }
    grp.finish();

    pde_bench::print_series3(
        "E16: chase engines — naive / semi-naive ms (speedup), governed overhead",
        ("workload", "times (ms)", "semi-naive stats"),
        &rows,
    );
    pde_bench::write_report("E16", &measurements, &metrics);
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
