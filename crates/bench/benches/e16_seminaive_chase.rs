//! E16 — semi-naive vs naive chase engine. Two chase-heavy workloads:
//!
//! * **clique/egd**: the §4 egd-boundary dependencies (Σst ∪ Σt) chased on
//!   complete graphs. Every `D` edge mints two nulls and the two egds
//!   merge them per-anchor, so the naive engine pays a full violation
//!   re-scan plus a whole-instance rewrite per merge, while the semi-naive
//!   engine batches each round's merges in one union-find and one targeted
//!   rewrite.
//! * **genomics**: the §1 sync scenario's Σst chase. One productive round
//!   followed by a fixpoint round; semi-naive skips the full re-enumeration
//!   of already-seen triggers in the second round.
//!
//! The differential property tests guarantee the engines agree; this
//! experiment measures what that agreement costs.
//!
//! A third **governed** arm re-runs the semi-naive engine under a
//! `Governor` with generous (never-binding) wall-clock and memory budgets,
//! so the per-round deadline checks and byte accounting are live. The
//! summary table reports its overhead against the ungoverned semi-naive
//! run; the robustness acceptance bar is < 3%.
//!
//! **E19 — serve-loop request latency** also rides here (`e19_*` keys).
//! A client thread drives one `pde serve` session over an in-memory
//! blocking pipe — the wire protocol end to end, store commits included —
//! and buckets the client-observed per-request latency into the same
//! power-of-two histograms the server exports, snapshotted into
//! `BENCH_E16.json` next to the timings.
//!
//! **E17 — dependency rewriting + stratified scheduling** rides in the
//! same report (its `e17_*` keys land in `BENCH_E16.json`). The two
//! workloads above are re-declared with redundancy padding — alpha-renamed
//! duplicates, subsumed tgds, a trivial egd, and a dependency reading a
//! relation no chase can populate — and chased (a) as written and (b)
//! after `pde_analysis::optimize_setting` under the stratified
//! `forward_schedule`. Acceptance: measurable speedup on the padded
//! settings; on the clean settings the schedule's overhead stays within
//! noise (the schedule there is the near-trivial one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_analysis::{forward_schedule, optimize_setting};
use pde_chase::{
    chase_governed_scheduled, chase_governed_with, chase_naive_with, chase_seminaive_with,
    ChaseEngine, ChaseLimits, ChaseResult, DepSchedule, WitnessMode,
};
use pde_constraints::Dependency;
use pde_core::{Bundle, PdeSetting};
use pde_relational::{Instance, NullGen, Relation, Tuple, Value};
use pde_runtime::{Governor, GovernorConfig};
use pde_workloads::boundary::{egd_boundary_instance, egd_boundary_setting};
use pde_workloads::genomics::{genomics_instance, genomics_setting, GenomicsParams};
use pde_workloads::Graph;
use peer_data_exchange::serve::{serve, ServeOptions};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Σst ∪ Σt of a setting as one chaseable dependency list.
fn forward_deps(setting: &PdeSetting) -> Vec<Dependency> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect()
}

fn run(engine: &str, input: &Instance, deps: &[Dependency]) -> ChaseResult {
    let gen = NullGen::new();
    let limits = ChaseLimits::default();
    match engine {
        "naive" => chase_naive_with(input.clone(), deps, WitnessMode::FreshNulls(&gen), limits),
        "governed" => {
            // Generous budgets that never bind, so only the check/accounting
            // overhead is measured.
            let governor = Governor::new(GovernorConfig {
                deadline: Some(Duration::from_secs(3600)),
                memory_budget_bytes: Some(1 << 30),
                cancel: None,
            });
            chase_governed_with(
                input.clone(),
                deps,
                WitnessMode::FreshNulls(&gen),
                limits,
                ChaseEngine::Seminaive,
                &governor,
            )
        }
        _ => chase_seminaive_with(input.clone(), deps, WitnessMode::FreshNulls(&gen), limits),
    }
}

/// The egd-boundary setting padded with every redundancy class the
/// optimizer removes. Semantically identical to [`egd_boundary_setting`]
/// (the extra `Junk` relation stays empty and unread in any solution).
fn padded_egd_boundary_setting() -> PdeSetting {
    PdeSetting::parse(
        "source D/2; source E/2; target P/4; target Junk/2;",
        "D(x, y) -> exists z, w . P(x, z, y, w);
         D(u, v) -> exists a, b . P(u, a, v, b);
         D(x, y), D(y, x) -> exists z, w . P(x, z, y, w)",
        "P(x, z, y, w) -> E(z, w)",
        "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2;
         P(x, z, y, w), P(y, z2, y2, w2) -> w = z2;
         P(x, z, y, w) -> x = x;
         Junk(x, y), P(a, b, c, d) -> b = d",
    )
    .expect("padded egd boundary setting is well-formed")
}

/// The genomics sync setting padded the same way (`u_orphan` is the dead
/// relation: declared, never populated, read by one Σt tgd).
fn padded_genomics_setting() -> PdeSetting {
    PdeSetting::parse(
        "source sp_protein/3; source sp_annotation/2; \
         target u_protein/2; target u_annotation/2; target u_orphan/2;",
        "sp_protein(a, n, o) -> u_protein(a, o);
         sp_protein(p, q, r) -> u_protein(p, r);
         sp_protein(a, n, o), sp_annotation(a, g) -> u_annotation(a, g);
         sp_protein(a, n, o), sp_annotation(a, g), sp_annotation(a, g2) -> u_annotation(a, g)",
        "u_protein(a, o) -> exists n . sp_protein(a, n, o);
         u_annotation(a, g) -> sp_annotation(a, g)",
        "u_orphan(x, y) -> u_protein(x, y)",
    )
    .expect("padded genomics setting is well-formed")
}

/// One semi-naive chase under an optional stratified schedule.
fn run_scheduled(
    input: &Instance,
    deps: &[Dependency],
    schedule: Option<&DepSchedule>,
) -> ChaseResult {
    let gen = NullGen::new();
    chase_governed_scheduled(
        input.clone(),
        deps,
        WitnessMode::FreshNulls(&gen),
        ChaseLimits::default(),
        ChaseEngine::Seminaive,
        &Governor::unlimited(),
        schedule,
    )
}

/// The E17 arms for one workload: chase the padded setting as written,
/// chase its optimized+scheduled rewrite, and chase the clean setting
/// with and without its (near-trivial) schedule. Returns the measurement
/// keys pushed into the shared report plus a summary row.
#[allow(clippy::too_many_arguments)]
fn e17_arms(
    c: &mut Criterion,
    label: &str,
    size: u32,
    padded: &PdeSetting,
    clean: &PdeSetting,
    padded_input: &Instance,
    clean_input: &Instance,
    measurements: &mut Vec<(String, f64)>,
    rows: &mut Vec<(String, String, String)>,
) {
    let padded_deps = forward_deps(padded);
    let opt = optimize_setting(padded, padded_input);
    let opt_deps = forward_deps(&opt.optimized);
    let opt_schedule = forward_schedule(&opt.optimized);
    let clean_deps = forward_deps(clean);
    let clean_schedule = forward_schedule(clean);

    let mut grp = c.benchmark_group(format!("e17_optimize/{label}"));
    grp.sample_size(10);
    grp.bench_with_input(BenchmarkId::new("padded", size), padded_input, |b, i| {
        b.iter(|| assert!(run_scheduled(i, &padded_deps, None).is_success()));
    });
    grp.bench_with_input(BenchmarkId::new("optimized", size), padded_input, |b, i| {
        b.iter(|| assert!(run_scheduled(i, &opt_deps, Some(&opt_schedule)).is_success()));
    });
    grp.finish();

    let padded_ms = pde_bench::time_ms(|| {
        let _ = run_scheduled(padded_input, &padded_deps, None);
    });
    let optimized_ms = pde_bench::time_ms(|| {
        let _ = run_scheduled(padded_input, &opt_deps, Some(&opt_schedule));
    });
    let optimize_pass_ms = pde_bench::time_ms(|| {
        let _ = optimize_setting(padded, padded_input);
    });
    let clean_ms = pde_bench::time_ms(|| {
        let _ = run_scheduled(clean_input, &clean_deps, None);
    });
    let clean_scheduled_ms = pde_bench::time_ms(|| {
        let _ = run_scheduled(clean_input, &clean_deps, Some(&clean_schedule));
    });
    let key = format!("e17_{label}_{size}");
    measurements.push((format!("{key}.padded_ms"), padded_ms));
    measurements.push((format!("{key}.optimized_ms"), optimized_ms));
    measurements.push((format!("{key}.optimize_pass_ms"), optimize_pass_ms));
    measurements.push((format!("{key}.clean_ms"), clean_ms));
    measurements.push((format!("{key}.clean_scheduled_ms"), clean_scheduled_ms));
    rows.push((
        format!("E17 {label} {size}"),
        format!(
            "{padded_ms:.2} / {optimized_ms:.2} ({:.1}x), sched {:+.1}%",
            padded_ms / optimized_ms,
            (clean_scheduled_ms / clean_ms - 1.0) * 100.0
        ),
        format!(
            "removed {} of {} deps, {} strata",
            opt.certificate.actions.len(),
            opt.certificate.before.total(),
            opt_schedule.strata_count()
        ),
    ));
}

/// Row-oriented replica of the pre-columnar `Relation`: `Arc<[Value]>`
/// rows, a `HashMap` membership set, and `HashMap<Value, Vec<u32>>`
/// per-attribute indexes. E18's baseline arm — kept here so the storage
/// comparison survives the production crate's move to columnar layout.
struct RowRelation {
    arity: u16,
    rows: Vec<Tuple>,
    live: Vec<bool>,
    epochs: Vec<u64>,
    set: HashMap<Tuple, u32>,
    index: Vec<HashMap<Value, Vec<u32>>>,
}

impl RowRelation {
    fn new(arity: u16) -> RowRelation {
        RowRelation {
            arity,
            rows: Vec::new(),
            live: Vec::new(),
            epochs: Vec::new(),
            set: HashMap::new(),
            index: (0..arity).map(|_| HashMap::new()).collect(),
        }
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if self.set.contains_key(&t) {
            return false;
        }
        let r = u32::try_from(self.rows.len()).expect("row id overflow");
        for (i, v) in t.values().iter().enumerate() {
            self.index[i].entry(*v).or_default().push(r);
        }
        self.set.insert(t.clone(), r);
        self.rows.push(t);
        self.live.push(true);
        self.epochs.push(0);
        true
    }

    fn count_with(&self, attr: u16, v: Value) -> usize {
        self.index[attr as usize].get(&v).map_or(0, Vec::len)
    }

    /// Honest heap accounting of this layout, mirroring the cost model the
    /// old `Relation::approx_heap_bytes` used: row slots (fat pointers),
    /// per-row `Arc` allocations (header + values), epoch/liveness arrays,
    /// membership-set entries, and index entries plus posting storage.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let arc_alloc = 2 * size_of::<usize>() + self.arity as usize * size_of::<Value>();
        let mut bytes = self.rows.capacity() * size_of::<Tuple>()
            + self.rows.len() * arc_alloc
            + self.epochs.capacity() * size_of::<u64>()
            + self.live.capacity()
            + self.set.capacity() * (size_of::<(Tuple, u32)>() + 1)
            + self.set.len() * arc_alloc;
        for idx in &self.index {
            bytes += idx.capacity() * (size_of::<(Value, Vec<u32>)>() + 1);
            bytes += idx
                .values()
                .map(|p| p.capacity() * size_of::<u32>())
                .sum::<usize>();
        }
        bytes
    }
}

/// The E18 arms for one workload: build the chased instance's fact set
/// into the row-store baseline and the production columnar store, probe
/// every (attribute, value) pair through both indexes, and compare
/// measured bytes per fact.
fn e18_arms(
    c: &mut Criterion,
    label: &str,
    instance: &Instance,
    measurements: &mut Vec<(String, f64)>,
    rows: &mut Vec<(String, String, String)>,
) {
    // Flatten the chased instance into per-relation fact lists.
    let schema = instance.schema().clone();
    let mut facts: Vec<(u16, Vec<Tuple>)> = schema
        .rel_ids()
        .map(|r| (schema.arity(r), Vec::new()))
        .collect();
    for (rel, t) in instance.facts() {
        facts[rel.index()].1.push(t);
    }
    let fact_count: usize = facts.iter().map(|(_, ts)| ts.len()).sum();

    let build_row = |facts: &[(u16, Vec<Tuple>)]| -> Vec<RowRelation> {
        facts
            .iter()
            .map(|(arity, ts)| {
                let mut r = RowRelation::new(*arity);
                for t in ts {
                    r.insert(t.clone());
                }
                r
            })
            .collect()
    };
    let build_columnar = |facts: &[(u16, Vec<Tuple>)]| -> Vec<Relation> {
        facts
            .iter()
            .map(|(arity, ts)| {
                let mut r = Relation::new(*arity);
                for t in ts {
                    r.insert(t.clone());
                }
                r
            })
            .collect()
    };

    let mut grp = c.benchmark_group(format!("e18_storage/{label}"));
    grp.sample_size(10);
    grp.bench_function("row_build", |b| b.iter(|| build_row(&facts)));
    grp.bench_function("columnar_build", |b| b.iter(|| build_columnar(&facts)));

    // Probe workload: every (attribute, value) occurrence in the fact set,
    // counted through the store's index — the access pattern of trigger
    // matching's anchor-selectivity estimation.
    let row_store = build_row(&facts);
    let col_store = build_columnar(&facts);
    let probe_row = |store: &[RowRelation]| -> usize {
        let mut hits = 0usize;
        for (rel, (_, ts)) in store.iter().zip(&facts) {
            for t in ts {
                for (i, v) in t.values().iter().enumerate() {
                    hits += rel.count_with(u16::try_from(i).unwrap(), *v);
                }
            }
        }
        hits
    };
    let probe_columnar = |store: &[Relation]| -> usize {
        let mut hits = 0usize;
        for (rel, (_, ts)) in store.iter().zip(&facts) {
            for t in ts {
                for (i, v) in t.values().iter().enumerate() {
                    hits += rel.count_with(u16::try_from(i).unwrap(), *v);
                }
            }
        }
        hits
    };
    assert_eq!(probe_row(&row_store), probe_columnar(&col_store));
    grp.bench_function("row_probe", |b| b.iter(|| probe_row(&row_store)));
    grp.bench_function("columnar_probe", |b| b.iter(|| probe_columnar(&col_store)));
    grp.finish();

    let row_build_ms = pde_bench::time_ms(|| {
        let _ = build_row(&facts);
    });
    let col_build_ms = pde_bench::time_ms(|| {
        let _ = build_columnar(&facts);
    });
    let row_probe_ms = pde_bench::time_ms(|| {
        let _ = probe_row(&row_store);
    });
    let col_probe_ms = pde_bench::time_ms(|| {
        let _ = probe_columnar(&col_store);
    });
    let row_bytes = row_store.iter().map(RowRelation::heap_bytes).sum::<usize>();
    let col_bytes = col_store.iter().map(Relation::heap_bytes).sum::<usize>();
    let row_bpf = row_bytes as f64 / fact_count as f64;
    let col_bpf = col_bytes as f64 / fact_count as f64;

    let key = format!("e18_{label}");
    measurements.push((format!("{key}.facts"), fact_count as f64));
    measurements.push((format!("{key}.row_build_ms"), row_build_ms));
    measurements.push((format!("{key}.columnar_build_ms"), col_build_ms));
    measurements.push((format!("{key}.row_probe_ms"), row_probe_ms));
    measurements.push((format!("{key}.columnar_probe_ms"), col_probe_ms));
    measurements.push((format!("{key}.row_bytes_per_fact"), row_bpf));
    measurements.push((format!("{key}.columnar_bytes_per_fact"), col_bpf));
    rows.push((
        format!("E18 {label}"),
        format!(
            "build {row_build_ms:.2} / {col_build_ms:.2} ({:.1}x), \
             probe {row_probe_ms:.2} / {col_probe_ms:.2} ({:.1}x)",
            row_build_ms / col_build_ms,
            row_probe_ms / col_probe_ms
        ),
        format!(
            "{fact_count} facts, {row_bpf:.0} -> {col_bpf:.0} B/fact ({:.1}x)",
            row_bpf / col_bpf
        ),
    ));
}

/// Shared state of one in-memory pipe direction.
struct PipeInner {
    buf: VecDeque<u8>,
    closed: bool,
}

/// A blocking byte pipe: the reader parks until the writer supplies bytes
/// or hangs up. One per direction gives the serve loop a client "socket"
/// without any OS plumbing, so E19 measures the wire protocol, not the
/// kernel.
#[derive(Clone)]
struct Pipe(Arc<(Mutex<PipeInner>, Condvar)>);

impl Pipe {
    fn new() -> Pipe {
        Pipe(Arc::new((
            Mutex::new(PipeInner {
                buf: VecDeque::new(),
                closed: false,
            }),
            Condvar::new(),
        )))
    }

    /// Ends the stream: the reader sees EOF once the buffer drains.
    fn close(&self) {
        let (lock, cond) = &*self.0;
        lock.lock().expect("pipe lock never poisoned").closed = true;
        cond.notify_all();
    }
}

impl Read for Pipe {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let (lock, cond) = &*self.0;
        let mut inner = lock.lock().expect("pipe lock never poisoned");
        while inner.buf.is_empty() && !inner.closed {
            inner = cond.wait(inner).expect("pipe lock never poisoned");
        }
        let n = inner.buf.len().min(out.len());
        for slot in out.iter_mut().take(n) {
            *slot = inner.buf.pop_front().expect("n bytes available");
        }
        Ok(n)
    }
}

impl Write for Pipe {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        let (lock, cond) = &*self.0;
        let mut inner = lock.lock().expect("pipe lock never poisoned");
        inner.buf.extend(bytes);
        cond.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The serve fixture: the tractable fast path applies, so a solve is one
/// incremental chase refresh + homomorphism check — the steady-state shape
/// of a long-lived session.
fn serve_bundle() -> Bundle {
    Bundle::parse(
        "%schema\nsource E/2; target H/2;\n%st\nE(x, z), E(z, y) -> H(x, y)\n\
         %ts\nH(x, y) -> E(x, y)\n%t\n%instance\nE(a, a).\n",
    )
    .expect("serve fixture bundle is well-formed")
}

/// A fresh store directory for one serve session.
fn serve_store_dir(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pde-bench-e19-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

/// The E19 request mix: `mutate` in 0..=100 is the percentage of requests
/// that are inserts (each a fresh fact, so each one commits a journal
/// frame); the rest are solves off the incrementally maintained chase.
fn e19_requests(n: usize, mutate: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            if i * 100 < n * mutate {
                format!("{{\"op\":\"insert\",\"facts\":\"E(a{i}, b{i}).\"}}")
            } else {
                "{\"op\":\"solve\"}".to_owned()
            }
        })
        .collect()
}

/// Drive one serve session over the pipe pair, one request at a time
/// (write line, block on the response line), timing each round trip.
/// Returns the total session wall-clock in ms; per-request latencies land
/// in `lat` keyed by the request's op when one is supplied.
fn serve_session(
    bundle: &Bundle,
    dir: &str,
    requests: &[String],
    mut lat: Option<&mut HashMap<String, pde_trace::Histogram>>,
) -> f64 {
    let mut to_server = Pipe::new();
    let to_client = Pipe::new();
    let options = ServeOptions {
        store_dir: dir.to_owned(),
        timeout: None,
        memory_limit: None,
        stats: false,
        access_log: None,
        trace_sample: 0,
    };
    let server = {
        let bundle = bundle.clone();
        let input = BufReader::new(to_server.clone());
        let mut output = to_client.clone();
        std::thread::spawn(move || {
            serve(&bundle, &options, input, &mut output).expect("serve session runs to EOF");
            output.close();
        })
    };

    let mut from_server = BufReader::new(to_client.clone());
    let mut line = String::new();
    from_server.read_line(&mut line).expect("hello line");
    assert!(line.contains("pde-serve-hello"), "hello: {line}");

    let session = Instant::now();
    for req in requests {
        let t = Instant::now();
        to_server
            .write_all(req.as_bytes())
            .and_then(|()| to_server.write_all(b"\n"))
            .expect("pipe write");
        line.clear();
        from_server.read_line(&mut line).expect("response line");
        assert!(line.contains("\"ok\":true"), "response: {line}");
        if let Some(by_op) = lat.as_deref_mut() {
            let op = if req.contains("\"insert\"") {
                "insert"
            } else {
                "solve"
            };
            let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            by_op.entry(op.to_owned()).or_default().record(ns);
        }
    }
    let total_ms = session.elapsed().as_secs_f64() * 1e3;
    to_server.close();
    server.join().expect("server thread exits cleanly");
    total_ms
}

/// The E19 arms: Criterion-timed whole sessions per request mix, plus one
/// instrumented session per mix whose client-observed latency histograms
/// are snapshotted into the report metrics as `e19.request_ns[.op]`.
fn e19_arms(
    c: &mut Criterion,
    measurements: &mut Vec<(String, f64)>,
    metrics: &mut pde_trace::MetricsRegistry,
    rows: &mut Vec<(String, String, String)>,
) {
    let bundle = serve_bundle();
    let mut grp = c.benchmark_group("e19_serve");
    grp.sample_size(10);
    for (label, mutate) in [("solve", 0usize), ("mixed", 50), ("insert", 100)] {
        let requests = e19_requests(32, mutate);
        grp.bench_function(label, |b| {
            b.iter(|| {
                let dir = serve_store_dir(label);
                let ms = serve_session(&bundle, &dir, &requests, None);
                let _ = std::fs::remove_dir_all(&dir);
                ms
            });
        });
    }
    grp.finish();

    for (label, mutate) in [("solve", 0usize), ("mixed", 50), ("insert", 100)] {
        let requests = e19_requests(128, mutate);
        let mut by_op: HashMap<String, pde_trace::Histogram> = HashMap::new();
        let dir = serve_store_dir(label);
        let total_ms = serve_session(&bundle, &dir, &requests, Some(&mut by_op));
        let _ = std::fs::remove_dir_all(&dir);

        let mut overall = pde_trace::Histogram::default();
        for (op, h) in &by_op {
            overall.merge(h);
            metrics.merge_histogram(&format!("e19_{label}.request_ns.{op}"), h);
        }
        metrics.merge_histogram(&format!("e19_{label}.request_ns"), &overall);
        let mean_us = overall.sum as f64 / overall.count as f64 / 1e3;
        let key = format!("e19_serve_{label}");
        measurements.push((format!("{key}.requests"), requests.len() as f64));
        measurements.push((format!("{key}.session_ms"), total_ms));
        measurements.push((format!("{key}.mean_request_us"), mean_us));
        rows.push((
            format!("E19 serve {label}"),
            format!("{total_ms:.2} ms / {} req", requests.len()),
            format!("mean {mean_us:.1} us, max {} ns", overall.max),
        ));
    }
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    // Perf-trajectory record: flat named timings plus a metrics snapshot
    // of the semi-naive engine counters, written as BENCH_E16.json.
    let mut measurements: Vec<(String, f64)> = Vec::new();
    let mut metrics = pde_trace::MetricsRegistry::new();

    // Workload 1: egd-heavy clique boundary chase.
    let setting = egd_boundary_setting();
    let deps = forward_deps(&setting);
    let mut grp = c.benchmark_group("e16_seminaive_chase/clique");
    grp.sample_size(10);
    for k in [6u32, 10, 14, 18] {
        // `D` is the k-element inequality relation, so the merge workload
        // grows with k: Σst mints 2 nulls per D fact and the two egds
        // collapse them per anchor.
        let input = egd_boundary_instance(&setting, &Graph::complete(3), k);
        for engine in ["naive", "seminaive", "governed"] {
            grp.bench_with_input(BenchmarkId::new(engine, k), &input, |b, input| {
                b.iter(|| {
                    let res = run(engine, input, &deps);
                    assert!(res.is_success());
                });
            });
        }
        let naive_ms = pde_bench::time_ms(|| {
            let _ = run("naive", &input, &deps);
        });
        let semi_ms = pde_bench::time_ms(|| {
            let _ = run("seminaive", &input, &deps);
        });
        let gov_ms = pde_bench::time_ms(|| {
            let _ = run("governed", &input, &deps);
        });
        let stats = run("seminaive", &input, &deps).stats;
        measurements.push((format!("clique_k{k}.naive_ms"), naive_ms));
        measurements.push((format!("clique_k{k}.seminaive_ms"), semi_ms));
        measurements.push((format!("clique_k{k}.governed_ms"), gov_ms));
        stats.export_metrics(&mut metrics);
        rows.push((
            format!("clique k={k}"),
            format!(
                "{naive_ms:.2} / {semi_ms:.2} ({:.1}x), gov {:+.1}%",
                naive_ms / semi_ms,
                (gov_ms / semi_ms - 1.0) * 100.0
            ),
            format!(
                "rounds={} merges={} skipped={}",
                stats.rounds, stats.egd_merges, stats.skipped_by_delta
            ),
        ));
    }
    grp.finish();

    // Workload 2: genomics Σst sync chase.
    let setting = genomics_setting();
    let deps = forward_deps(&setting);
    let mut grp = c.benchmark_group("e16_seminaive_chase/genomics");
    grp.sample_size(10);
    for proteins in [200u32, 400, 800] {
        let params = GenomicsParams {
            proteins,
            annotations_per_protein: 3,
            organisms: 10,
            go_terms: 200,
            preloaded: proteins / 10,
            rogue: 0,
            seed: 99,
        };
        let input = genomics_instance(&setting, &params);
        for engine in ["naive", "seminaive", "governed"] {
            grp.bench_with_input(BenchmarkId::new(engine, proteins), &input, |b, input| {
                b.iter(|| {
                    let res = run(engine, input, &deps);
                    assert!(res.is_success());
                });
            });
        }
        let naive_ms = pde_bench::time_ms(|| {
            let _ = run("naive", &input, &deps);
        });
        let semi_ms = pde_bench::time_ms(|| {
            let _ = run("seminaive", &input, &deps);
        });
        let gov_ms = pde_bench::time_ms(|| {
            let _ = run("governed", &input, &deps);
        });
        let stats = run("seminaive", &input, &deps).stats;
        measurements.push((format!("genomics_{proteins}p.naive_ms"), naive_ms));
        measurements.push((format!("genomics_{proteins}p.seminaive_ms"), semi_ms));
        measurements.push((format!("genomics_{proteins}p.governed_ms"), gov_ms));
        stats.export_metrics(&mut metrics);
        rows.push((
            format!("genomics {proteins}p"),
            format!(
                "{naive_ms:.2} / {semi_ms:.2} ({:.1}x), gov {:+.1}%",
                naive_ms / semi_ms,
                (gov_ms / semi_ms - 1.0) * 100.0
            ),
            format!(
                "rounds={} fired={} skipped={}",
                stats.rounds, stats.triggers_fired, stats.skipped_by_delta
            ),
        ));
    }
    grp.finish();

    // E17: redundancy-padded variants, rewritten + stratified.
    let clean = egd_boundary_setting();
    let padded = padded_egd_boundary_setting();
    for k in [10u32, 14, 18] {
        let clean_input = egd_boundary_instance(&clean, &Graph::complete(3), k);
        let padded_input = egd_boundary_instance(&padded, &Graph::complete(3), k);
        e17_arms(
            c,
            "clique",
            k,
            &padded,
            &clean,
            &padded_input,
            &clean_input,
            &mut measurements,
            &mut rows,
        );
    }
    let clean = genomics_setting();
    let padded = padded_genomics_setting();
    for proteins in [400u32, 800] {
        let params = GenomicsParams {
            proteins,
            annotations_per_protein: 3,
            organisms: 10,
            go_terms: 200,
            preloaded: proteins / 10,
            rogue: 0,
            seed: 99,
        };
        let clean_input = genomics_instance(&clean, &params);
        let padded_input = genomics_instance(&padded, &params);
        e17_arms(
            c,
            "genomics",
            proteins,
            &padded,
            &clean,
            &padded_input,
            &clean_input,
            &mut measurements,
            &mut rows,
        );
    }

    // E18: columnar vs row-oriented storage, measured on the chased fact
    // sets of the E16 workloads (plus the CLIQUE reduction's dense
    // instance) — build, index probe, and bytes per fact.
    let setting = pde_workloads::clique::clique_setting();
    let deps = forward_deps(&setting);
    let input = pde_workloads::clique::clique_instance(&setting, &Graph::complete(12), 6);
    let chased = run("seminaive", &input, &deps);
    assert!(chased.is_success());
    e18_arms(c, "clique", &chased.instance, &mut measurements, &mut rows);

    let setting = egd_boundary_setting();
    let deps = forward_deps(&setting);
    let input = egd_boundary_instance(&setting, &Graph::complete(3), 18);
    let chased = run("seminaive", &input, &deps);
    assert!(chased.is_success());
    e18_arms(
        c,
        "boundary",
        &chased.instance,
        &mut measurements,
        &mut rows,
    );

    let setting = genomics_setting();
    let deps = forward_deps(&setting);
    let params = GenomicsParams {
        proteins: 800,
        annotations_per_protein: 3,
        organisms: 10,
        go_terms: 200,
        preloaded: 80,
        rogue: 0,
        seed: 99,
    };
    let input = genomics_instance(&setting, &params);
    let chased = run("seminaive", &input, &deps);
    assert!(chased.is_success());
    e18_arms(
        c,
        "genomics",
        &chased.instance,
        &mut measurements,
        &mut rows,
    );

    // E19: end-to-end serve-loop request latency over the in-memory pipe.
    e19_arms(c, &mut measurements, &mut metrics, &mut rows);

    pde_bench::print_series3(
        "E16/E17/E18/E19: chase engines, the optimizer, columnar storage, \
         and serve latency — before / after ms (speedup)",
        ("workload", "times (ms)", "stats"),
        &rows,
    );
    pde_bench::write_report("E16", &measurements, &metrics);
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
