//! E13 — homomorphism-search ablation: the per-attribute hash indexes and
//! the most-constrained-first atom ordering are what make the chase's
//! trigger checks and the block tests cheap. Turning either off must
//! degrade gracefully on easy patterns and catastrophically on hard ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_relational::{
    all_homs, exists_hom_with, parse_atoms, parse_instance, parse_schema, Assignment, HomConfig,
    Instance,
};
use pde_workloads::Graph;
use std::sync::Arc;

fn graph_instance(schema: &Arc<pde_relational::Schema>, g: &Graph) -> Instance {
    let mut src = String::new();
    for (u, v) in g.edges() {
        src.push_str(&format!("E(v{u}, v{v}). E(v{v}, v{u}). "));
    }
    parse_instance(schema, &src).unwrap()
}

fn bench(c: &mut Criterion) {
    let schema = Arc::new(parse_schema("source E/2; source T/2;").unwrap());
    let configs = [
        (
            "idx+reorder",
            HomConfig {
                use_index: true,
                reorder_atoms: true,
            },
        ),
        (
            "idx_only",
            HomConfig {
                use_index: true,
                reorder_atoms: false,
            },
        ),
        (
            "reorder_only",
            HomConfig {
                use_index: false,
                reorder_atoms: true,
            },
        ),
        (
            "naive",
            HomConfig {
                use_index: false,
                reorder_atoms: false,
            },
        ),
    ];
    // A 5-atom path query — long joins are where ordering matters.
    let path5 = parse_atoms(&schema, "E(a, b), E(b, c2), E(c2, d), E(d, e2), E(e2, f)").unwrap();

    let mut rows = Vec::new();
    let mut grp = c.benchmark_group("e13_hom_ablation");
    grp.sample_size(10);
    for n in [20u32, 40, 80] {
        let g = Graph::gnp(n, 0.08, 11);
        let inst = graph_instance(&schema, &g);
        for (label, config) in configs {
            grp.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
                b.iter(|| exists_hom_with(&path5, inst, &Assignment::new(), config));
            });
        }
        let mut cells = Vec::new();
        for (_, config) in configs {
            let ms = pde_bench::time_ms(|| {
                let _ = exists_hom_with(&path5, &inst, &Assignment::new(), config);
            });
            cells.push(format!("{ms:.3}"));
        }
        rows.push((format!("G({n}, .08)"), cells.join(" / "), String::new()));
    }
    grp.finish();
    pde_bench::print_series3(
        "E13: hom search ablation — ms for idx+reorder / idx / reorder / naive",
        ("instance", "times (ms)", ""),
        &rows,
    );

    // Ordering stress: a tiny *disconnected* atom written mid-chain. The
    // written order branches over T before finishing the E-chain,
    // multiplying the remaining join work; the reorderer must keep the
    // connected chain together and defer T to the end, even though T's
    // cardinality estimate is the smallest on the table.
    let mixed = parse_atoms(&schema, "E(a, b), E(b, c2), T(s, t), E(c2, d)").unwrap();
    let mut rows = Vec::new();
    let mut grp = c.benchmark_group("e13_hom_ablation/disconnected");
    grp.sample_size(10);
    for n in [20u32, 40] {
        let g = Graph::gnp(n, 0.08, 11);
        let mut inst = graph_instance(&schema, &g);
        for i in 0..8 {
            inst.insert_consts("T", [format!("t{i}").as_str(), "u"]);
        }
        for (label, config) in [
            (
                "reorder",
                HomConfig {
                    use_index: true,
                    reorder_atoms: true,
                },
            ),
            (
                "written_order",
                HomConfig {
                    use_index: true,
                    reorder_atoms: false,
                },
            ),
        ] {
            grp.bench_with_input(BenchmarkId::new(label, n), &inst, |b, inst| {
                b.iter(|| {
                    let mut count = 0usize;
                    let _ = pde_relational::for_each_hom_with(
                        &mixed,
                        inst,
                        &Assignment::new(),
                        config,
                        |_| {
                            count += 1;
                            std::ops::ControlFlow::Continue(())
                        },
                    );
                    count
                });
            });
        }
        let reorder_ms = pde_bench::time_ms(|| {
            let _ = all_homs(&mixed, &inst, &Assignment::new());
        });
        rows.push((
            format!("G({n}, .08) + 8 T-rows"),
            format!("{reorder_ms:.3}"),
            String::new(),
        ));
    }
    grp.finish();
    pde_bench::print_series3(
        "E13b: connected-first ordering vs written order (disconnected atom mid-chain)",
        ("instance", "reorder ms", ""),
        &rows,
    );

    // Sanity: all configs return identical answer sets on a fixed case.
    let g = Graph::gnp(12, 0.2, 5);
    let inst = graph_instance(&schema, &g);
    let reference = all_homs(&path5, &inst, &Assignment::new()).len();
    for (_, config) in configs {
        let mut n = 0usize;
        let _ =
            pde_relational::for_each_hom_with(&path5, &inst, &Assignment::new(), config, |_| {
                n += 1;
                std::ops::ControlFlow::Continue(())
            });
        assert_eq!(n, reference);
    }
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
