//! E1 — Example 1 of the paper, as a microbenchmark.
//!
//! The three instances (no solution / unique solution / two solutions)
//! through the solver façade; all three run the polynomial `ExistsSolution`
//! path, so times are microseconds and flat.

use criterion::{criterion_group, criterion_main, Criterion};
use pde_core::decide;
use pde_workloads::paper::{example1_instances, example1_setting};

fn bench(c: &mut Criterion) {
    let setting = example1_setting();
    let [no, unique, two] = example1_instances(&setting);
    let mut g = c.benchmark_group("e01_example1");
    g.bench_function("no_solution", |b| {
        b.iter(|| decide(&setting, &no).unwrap().exists);
    });
    g.bench_function("unique_solution", |b| {
        b.iter(|| decide(&setting, &unique).unwrap().exists);
    });
    g.bench_function("two_solutions", |b| {
        b.iter(|| decide(&setting, &two).unwrap().exists);
    });
    g.finish();

    let rows: Vec<(&str, String)> = [
        ("E(a,b),E(b,c)", &no),
        ("E(a,a)", &unique),
        ("triangle", &two),
    ]
    .into_iter()
    .map(|(l, i)| {
        (
            l,
            format!("exists={:?}", decide(&setting, i).unwrap().exists),
        )
    })
    .collect();
    pde_bench::print_series("E1: Example 1 outcomes", ("instance", "result"), &rows);
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
