//! E3 — Theorem 3: `SOL(P)` is NP-complete; the complete solver's running
//! time on the CLIQUE reduction grows exponentially in the hard direction
//! while the reduction itself stays polynomial.
//!
//! Sweeps graph size for `k = 3` over planted-clique (yes) and sparse
//! (mostly no) inputs, cross-checking every answer against the direct
//! clique search, whose time is also reported as the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::assignment;
use pde_workloads::clique::{clique_instance, clique_setting};
use pde_workloads::{has_k_clique, Graph};

fn bench(c: &mut Criterion) {
    let setting = clique_setting();
    let k = 3;
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e03_clique_np");
    g.sample_size(10);
    for n in [4u32, 5, 6, 7] {
        let yes = Graph::planted_clique(n, 0.15, k, 7);
        let no = Graph::complete_bipartite(n / 2, n - n / 2); // triangle-free
        for (label, graph) in [("planted_yes", &yes), ("bipartite_no", &no)] {
            let input = clique_instance(&setting, graph, k);
            let expected = has_k_clique(graph, k);
            g.bench_with_input(
                BenchmarkId::new(format!("pde_{label}"), n),
                &input,
                |b, input| {
                    b.iter(|| {
                        let out = assignment::solve(&setting, input).unwrap();
                        assert_eq!(out.exists, expected);
                        out.exists
                    });
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("direct_{label}"), n),
                graph,
                |b, graph| b.iter(|| has_k_clique(graph, k)),
            );
            let ms = pde_bench::time_ms(|| {
                let _ = assignment::solve(&setting, &input).unwrap();
            });
            let direct_ms = pde_bench::time_ms(|| {
                let _ = has_k_clique(graph, k);
            });
            rows.push((
                format!("n={n} {label}"),
                format!("{ms:.2} ms"),
                format!("{direct_ms:.4} ms"),
            ));
        }
    }
    g.finish();
    pde_bench::print_series3(
        "E3: SOL(P) via CLIQUE reduction (k=3) — exponential vs direct baseline",
        ("case", "PDE solver", "direct clique"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
