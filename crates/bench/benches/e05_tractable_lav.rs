//! E5 — Theorem 4 / Corollary 2: with LAV Σts the `ExistsSolution`
//! algorithm decides `SOL(P)` in polynomial time.
//!
//! Sweeps instance size on the LAV workload in both the solvable and
//! unsolvable regimes; the measured growth should be low-degree
//! polynomial (the chase is quadratic in the clique size here; the block
//! homomorphism checks are linear in the number of blocks, each of
//! constant null-width — Theorem 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::tractable;
use pde_workloads::lav::{lav_setting, lav_solvable_instance, lav_unsolvable_instance};

fn bench(c: &mut Criterion) {
    let setting = lav_setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e05_tractable_lav");
    g.sample_size(10);
    for size in [4u32, 6, 8, 10, 12] {
        let yes = lav_solvable_instance(&setting, 2, size);
        let no = lav_unsolvable_instance(&setting, 2, size);
        g.bench_with_input(BenchmarkId::new("solvable", size), &yes, |b, input| {
            b.iter(|| {
                let out = tractable::exists_solution(&setting, input).unwrap();
                assert!(out.exists);
            });
        });
        g.bench_with_input(BenchmarkId::new("unsolvable", size), &no, |b, input| {
            b.iter(|| {
                let out = tractable::exists_solution(&setting, input).unwrap();
                assert!(!out.exists);
            });
        });
        let out = tractable::exists_solution(&setting, &yes).unwrap();
        rows.push((
            format!("2 cliques × {size}"),
            yes.fact_count(),
            format!(
                "J_can={} I_can={} blocks={} (≤{} nulls/block)",
                out.stats.jcan_facts,
                out.stats.ican_facts,
                out.stats.block_count,
                out.stats.max_block_nulls
            ),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E5: ExistsSolution on LAV settings (polynomial; Theorem 6 bounds block width)",
        ("instance", "|I| facts", "algorithm stats"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
