//! E12 — §2: multi-PDE settings reduce to a single PDE with the same
//! solution space. Sweeps the number of source peers; solving the union is
//! a single tractable call, and per-peer verification of the witness
//! scales linearly in the number of peers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::multi::{MultiPdeSetting, PeerConstraints};
use pde_core::tractable;
use pde_relational::{parse_instance, parse_schema, Instance, Schema};
use std::sync::Arc;

fn build(npeers: u32, rows_per_peer: u32) -> (MultiPdeSetting, Instance) {
    let mut schema_src = String::from("target T/2; ");
    for p in 0..npeers {
        schema_src.push_str(&format!("source S{p}/2; "));
    }
    let schema: Arc<Schema> = Arc::new(parse_schema(&schema_src).unwrap());
    let peers: Vec<PeerConstraints> = (0..npeers)
        .map(|p| PeerConstraints {
            name: format!("peer{p}"),
            sigma_st: pde_constraints::parser::parse_tgds(
                &schema,
                &format!("S{p}(x, y) -> T(x, y)"),
            )
            .unwrap(),
            sigma_ts: pde_constraints::parser::parse_tgds(
                &schema,
                &format!("T(x, x) -> S{p}(x, x)"),
            )
            .unwrap(),
            sigma_t: vec![],
        })
        .collect();
    let multi = MultiPdeSetting::new(schema.clone(), peers).unwrap();
    let mut src = String::new();
    for p in 0..npeers {
        for r in 0..rows_per_peer {
            src.push_str(&format!("S{p}(p{p}a{r}, p{p}b{r}). "));
        }
    }
    let input = parse_instance(&schema, &src).unwrap();
    (multi, input)
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e12_multi_pde");
    g.sample_size(10);
    for npeers in [2u32, 4, 8, 16] {
        let (multi, input) = build(npeers, 16);
        let single = multi.to_single();
        g.bench_with_input(
            BenchmarkId::new("solve_union", npeers),
            &input,
            |b, input| {
                b.iter(|| {
                    let out = tractable::exists_solution(&single, input).unwrap();
                    assert!(out.exists);
                });
            },
        );
        let out = tractable::exists_solution(&single, &input).unwrap();
        let witness = out.witness.unwrap();
        g.bench_with_input(
            BenchmarkId::new("verify_per_peer", npeers),
            &witness,
            |b, w| {
                b.iter(|| {
                    multi.check_multi_solution(&input, w).unwrap();
                });
            },
        );
        rows.push((
            npeers,
            input.fact_count(),
            format!(
                "witness target facts = {}",
                witness.fact_count() - input.fact_count()
            ),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E12: multi-PDE via the union construction",
        ("peers", "|I| facts", "outcome"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
