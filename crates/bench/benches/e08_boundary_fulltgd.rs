//! E8 — §4 boundary: the same Σst/Σts shape with a single **full target
//! tgd** (plus the copy relations `S`/`S2`) is NP-hard as well.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pde_core::{generic, GenericLimits};
use pde_workloads::boundary::{full_tgd_boundary_instance, full_tgd_boundary_setting};
use pde_workloads::{has_k_clique, Graph};

fn bench(c: &mut Criterion) {
    let setting = full_tgd_boundary_setting();
    let mut rows = Vec::new();
    let mut g = c.benchmark_group("e08_boundary_fulltgd");
    g.sample_size(10);
    for (label, graph, k) in [
        ("K3_k3_yes", Graph::complete(3), 3u32),
        ("P3_k3_no", Graph::path(3), 3),
        ("C4_k2_yes", Graph::cycle(4), 2),
    ] {
        let input = full_tgd_boundary_instance(&setting, &graph, k);
        let expected = has_k_clique(&graph, k);
        g.bench_with_input(BenchmarkId::new(label, k), &input, |b, input| {
            b.iter(|| {
                let out = generic::solve(&setting, input, GenericLimits::default()).unwrap();
                assert_eq!(out.decided(), Some(expected));
            });
        });
        let out = generic::solve(&setting, &input, GenericLimits::default()).unwrap();
        rows.push((
            label,
            format!("decided={:?}", out.decided()),
            format!("nodes={}", out.stats().nodes),
        ));
    }
    g.finish();
    pde_bench::print_series3(
        "E8: single full target tgd re-encodes CLIQUE",
        ("case", "verdict", "search stats"),
        &rows,
    );
}

// Criterion's macros expand to undocumented items.
#[allow(missing_docs)]
mod generated {
    use super::*;
    criterion_group!(benches, bench);
}
use generated::benches;
criterion_main!(benches);
