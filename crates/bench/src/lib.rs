//! Shared helpers for the experiment harness.
//!
//! Each Criterion bench target under `benches/` regenerates one experiment
//! of `EXPERIMENTS.md`. Criterion reports the timing distributions; the
//! helpers here additionally print the experiment's *series* (size →
//! measured value) as plain rows, so the scaling shape the paper's
//! complexity results predict can be read directly off `cargo bench`
//! output.

use std::fmt::Display;

/// Print a labeled series table to stderr (Criterion owns stdout).
pub fn print_series<A: Display, B: Display>(
    experiment: &str,
    header: (&str, &str),
    rows: &[(A, B)],
) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("{:>16} {:>20}", header.0, header.1);
    for (a, b) in rows {
        eprintln!("{a:>16} {b:>20}");
    }
}

/// Print a three-column series.
pub fn print_series3<A: Display, B: Display, C: Display>(
    experiment: &str,
    header: (&str, &str, &str),
    rows: &[(A, B, C)],
) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("{:>16} {:>20} {:>20}", header.0, header.1, header.2);
    for (a, b, c) in rows {
        eprintln!("{a:>16} {b:>20} {c:>20}");
    }
}

/// Milliseconds (fractional) of a timed closure, for the series printers.
pub fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}
