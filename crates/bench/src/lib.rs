//! Shared helpers for the experiment harness.
//!
//! Each Criterion bench target under `benches/` regenerates one experiment
//! of `EXPERIMENTS.md`. Criterion reports the timing distributions; the
//! helpers here additionally print the experiment's *series* (size →
//! measured value) as plain rows, so the scaling shape the paper's
//! complexity results predict can be read directly off `cargo bench`
//! output.

use std::fmt::Display;

/// Print a labeled series table to stderr (Criterion owns stdout).
pub fn print_series<A: Display, B: Display>(
    experiment: &str,
    header: (&str, &str),
    rows: &[(A, B)],
) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("{:>16} {:>20}", header.0, header.1);
    for (a, b) in rows {
        eprintln!("{a:>16} {b:>20}");
    }
}

/// Print a three-column series.
pub fn print_series3<A: Display, B: Display, C: Display>(
    experiment: &str,
    header: (&str, &str, &str),
    rows: &[(A, B, C)],
) {
    eprintln!("\n=== {experiment} ===");
    eprintln!("{:>16} {:>20} {:>20}", header.0, header.1, header.2);
    for (a, b, c) in rows {
        eprintln!("{a:>16} {b:>20} {c:>20}");
    }
}

/// Milliseconds (fractional) of a timed closure, for the series printers.
pub fn time_ms(mut f: impl FnMut()) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// The workspace commit the benchmark ran on, or `"unknown"` outside a
/// git checkout (e.g. a source tarball).
pub fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Write the machine-readable benchmark report `BENCH_<experiment>.json`
/// at the workspace root — the repo's perf-trajectory record. One JSON
/// object per experiment run: report schema version, commit hash,
/// wall-clock timestamp, the named timing measurements, and a
/// [`pde_trace::MetricsRegistry`] snapshot of the counters the workload
/// produced. Benches overwrite their own file; the trajectory lives in
/// the git history of these files.
pub fn write_report(
    experiment: &str,
    measurements: &[(String, f64)],
    metrics: &pde_trace::MetricsRegistry,
) {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let body: Vec<String> = measurements
        .iter()
        .map(|(k, v)| format!("{}:{v:.3}", pde_trace::json_escape(k)))
        .collect();
    let json = format!(
        "{{\"v\":{},\"experiment\":{},\"commit\":{},\"generated_unix_ms\":{unix_ms},\"measurements\":{{{}}},\"metrics\":{}}}\n",
        pde_trace::REPORT_VERSION,
        pde_trace::json_escape(experiment),
        pde_trace::json_escape(&commit_hash()),
        body.join(","),
        metrics.to_json(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{experiment}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
