//! The governor's derived memory budgets plan against
//! `pde_relational::BYTES_PER_FACT_BUDGET`, which claims to be a
//! cross-workload upper bound on the columnar storage's measured bytes
//! per fact. This guard chases the E16/E18 workloads and fails if any
//! chased instance's measured figure exceeds the budget — i.e. if a
//! storage change silently regresses memory density past what the plan
//! certificates promise.
//!
//! Unlike the timing guard next door this one is deterministic, but it
//! chases real workloads, so it is `#[ignore]`d for the regular suite and
//! run explicitly (release mode) by the CI `bench-guard` job:
//! `cargo test -p pde-bench --release bytes_per_fact -- --ignored`.

use pde_chase::{chase_seminaive_with, ChaseLimits, WitnessMode};
use pde_constraints::Dependency;
use pde_core::PdeSetting;
use pde_relational::{Instance, NullGen, BYTES_PER_FACT_BUDGET};
use pde_workloads::boundary::{egd_boundary_instance, egd_boundary_setting};
use pde_workloads::clique::{clique_instance, clique_setting};
use pde_workloads::genomics::{genomics_instance, genomics_setting, GenomicsParams};
use pde_workloads::Graph;

fn forward_deps(setting: &PdeSetting) -> Vec<Dependency> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect()
}

fn chased(setting: &PdeSetting, input: Instance) -> Instance {
    let gen = NullGen::new();
    let res = chase_seminaive_with(
        input,
        &forward_deps(setting),
        WitnessMode::FreshNulls(&gen),
        ChaseLimits::default(),
    );
    assert!(res.is_success());
    res.instance
}

#[test]
#[ignore = "workload guard; run explicitly in release mode (CI bench-guard job)"]
fn bytes_per_fact_stays_within_the_planning_budget() {
    let boundary = egd_boundary_setting();
    let clique = clique_setting();
    let genomics = genomics_setting();
    let workloads: Vec<(&str, Instance)> = vec![
        (
            "clique",
            chased(&clique, clique_instance(&clique, &Graph::complete(12), 6)),
        ),
        (
            "boundary",
            chased(
                &boundary,
                egd_boundary_instance(&boundary, &Graph::complete(3), 18),
            ),
        ),
        (
            "genomics",
            chased(
                &genomics,
                genomics_instance(
                    &genomics,
                    &GenomicsParams {
                        proteins: 800,
                        annotations_per_protein: 3,
                        organisms: 10,
                        go_terms: 200,
                        preloaded: 80,
                        rogue: 0,
                        seed: 99,
                    },
                ),
            ),
        ),
    ];
    for (label, inst) in workloads {
        let stats = inst.storage_stats();
        println!(
            "{label}: {} facts, {} heap bytes, {} bytes/fact (budget {})",
            stats.facts,
            stats.heap_bytes,
            stats.bytes_per_fact(),
            BYTES_PER_FACT_BUDGET
        );
        assert!(stats.facts > 0, "{label}: empty chase result");
        assert!(
            stats.bytes_per_fact() <= BYTES_PER_FACT_BUDGET,
            "{label}: measured {} bytes/fact exceeds the planning budget {}",
            stats.bytes_per_fact(),
            BYTES_PER_FACT_BUDGET
        );
    }
}
