//! The tracing fast path must be cheap enough to leave compiled in: with
//! no sink installed, `pde_trace::span` is one relaxed atomic load and an
//! inert guard. This guard measures that claim on the E16 clique workload
//! (the most span-dense code path: one span per round, per trigger sweep,
//! per egd batch, plus the delta hom searches inside) and fails if a
//! *no-op sink* — which exercises record construction and delivery, i.e.
//! strictly more than the disabled path — costs more than the 2%
//! acceptance bar.
//!
//! Timing guards are noise-sensitive, so the test is `#[ignore]`d for the
//! regular suite and run explicitly (release mode) by the CI `bench-guard`
//! job: `cargo test -p pde-bench --release noop_sink_overhead -- --ignored`.

use pde_chase::{chase_seminaive_with, ChaseLimits, WitnessMode};
use pde_constraints::Dependency;
use pde_relational::NullGen;
use pde_workloads::boundary::{egd_boundary_instance, egd_boundary_setting};
use pde_workloads::Graph;
use std::sync::Arc;
use std::time::Instant;

fn time_once(f: &impl Fn()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

#[test]
#[ignore = "timing guard; run explicitly in release mode (CI bench-guard job)"]
fn noop_sink_overhead_on_e16_is_under_two_percent() {
    let setting = egd_boundary_setting();
    let deps: Vec<Dependency> = setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect();
    let input = egd_boundary_instance(&setting, &Graph::complete(3), 18);
    let run = || {
        let gen = NullGen::new();
        let res = chase_seminaive_with(
            input.clone(),
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::default(),
        );
        assert!(res.is_success());
    };

    // Warm caches/allocator before either arm is timed.
    run();
    run();

    // The two arms are interleaved (disabled, noop, disabled, noop, …)
    // and each keeps its best observation, so clock drift, thermal
    // throttling, and scheduler noise hit both arms alike instead of
    // biasing whichever arm ran second. Shared-runner jitter can still
    // push one measurement past the bar, so the guard takes the best of
    // a few whole attempts: the regression it exists to catch (a sink
    // check that actually costs something) fails every attempt.
    const REPS: usize = 20;
    const ATTEMPTS: usize = 3;
    let mut best_overhead = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let mut disabled = f64::INFINITY;
        let mut noop = f64::INFINITY;
        for _ in 0..REPS {
            pde_trace::clear_sink();
            disabled = disabled.min(time_once(&run));
            pde_trace::set_sink(Arc::new(pde_trace::NoopSink));
            noop = noop.min(time_once(&run));
        }
        pde_trace::clear_sink();
        let overhead_pct = (noop / disabled - 1.0) * 100.0;
        eprintln!(
            "attempt {attempt}: E16 clique k=18 seminaive, disabled {:.3}ms, \
             noop sink {:.3}ms, overhead {overhead_pct:+.2}%",
            disabled * 1e3,
            noop * 1e3,
        );
        best_overhead = best_overhead.min(overhead_pct);
        if best_overhead < 2.0 {
            break;
        }
    }
    assert!(
        best_overhead < 2.0,
        "no-op sink overhead {best_overhead:.2}% exceeds the 2% acceptance bar \
         on every attempt"
    );
}
