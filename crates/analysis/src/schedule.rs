//! Stratified execution schedules from the interference graph.
//!
//! The strongly connected components of the interference graph are
//! condensed into a DAG and layered by longest path from the sources:
//! `level(C) = 1 + max(level(predecessors))`. Every interference edge
//! either stays inside one component (same stratum) or crosses to a
//! strictly higher level, so once a stratum's semi-naive fixpoint is
//! reached, no later stratum can reopen it — running the strata in level
//! order reaches the same global fixpoint as the unscheduled chase. Two
//! components on the same level have no edges between them at all, which
//! is exactly the independence the parallel-chase roadmap item needs to
//! run them as concurrent shards.
//!
//! Within a stratum, dependencies keep their original order, so an
//! unscheduled chase is literally the single-stratum special case.

use crate::interference::{interference_graph, InterferenceGraph};
use pde_chase::DepSchedule;
use pde_core::setting::PdeSetting;

/// Derive the stratified schedule for `setting`'s forward dependencies
/// (see [`crate::interference::forward_dependencies`] for the index
/// order).
pub fn forward_schedule(setting: &PdeSetting) -> DepSchedule {
    schedule_from_graph(&interference_graph(setting))
}

/// Layer the condensation of `graph` into strata (see the module docs for
/// the invariants). The result always partitions the node indices.
pub fn schedule_from_graph(graph: &InterferenceGraph) -> DepSchedule {
    let n = graph.node_count();
    let adj: Vec<Vec<usize>> = (0..n).map(|i| graph.successors(i).collect()).collect();
    let (comp, comp_count) = strongly_connected_components(&adj);
    // Longest-path levels over the condensation DAG; the fixpoint
    // terminates because cross-component edges are acyclic.
    let mut level = vec![0usize; comp_count];
    loop {
        let mut changed = false;
        for e in &graph.edges {
            let (cu, cv) = (comp[e.from], comp[e.to]);
            if cu != cv && level[cv] < level[cu] + 1 {
                level[cv] = level[cu] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let depth = level.iter().copied().max().map_or(0, |d| d + 1);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for i in 0..n {
        strata[level[comp[i]]].push(i);
    }
    DepSchedule { strata }
}

/// Iterative Tarjan: returns the component id of each node and the
/// component count. Ids are assigned in completion order (sinks first);
/// only membership matters to the caller.
fn strongly_connected_components(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut comp_count = 0usize;
    let mut next_index = 0u32;
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        // Explicit DFS frames `(node, next child offset)` instead of
        // recursion: dependency lists can be long and this runs in the
        // solve path.
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = frames.last() {
            if index[v] == UNVISITED {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if child < adj[v].len() {
                let w = adj[v][child];
                frames.last_mut().expect("frame exists").1 += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("component root is on the stack");
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    (comp, comp_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::forward_dependencies;

    fn setting(st: &str, t: &str) -> PdeSetting {
        PdeSetting::parse("source E/2; source F/2; target H/2; target G/2;", st, "", t).unwrap()
    }

    fn strata_of(st: &str, t: &str) -> Vec<Vec<usize>> {
        forward_schedule(&setting(st, t)).strata
    }

    #[test]
    fn chain_of_tgds_stratifies() {
        let s = strata_of("E(x, y) -> H(x, y)", "H(x, y) -> G(y, x)");
        assert_eq!(s, vec![vec![0], vec![1]]);
    }

    #[test]
    fn independent_tgds_share_a_stratum() {
        let s = strata_of("E(x, y) -> H(x, y); F(x, y) -> G(x, y)", "");
        assert_eq!(s, vec![vec![0, 1]]);
    }

    #[test]
    fn egd_collapses_its_cycle_into_one_stratum() {
        let s = strata_of(
            "E(x, y) -> H(x, y)",
            "H(x, y) -> G(y, x); G(x, y), G(x, z) -> y = z",
        );
        // The egd writes every target position, so it cycles with the
        // target tgd; the Σst tgd still gets its own earlier stratum.
        assert_eq!(s, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn schedule_always_partitions_the_dependencies() {
        let cases = [
            ("E(x, y) -> H(x, y)", ""),
            ("E(x, y) -> H(x, y)", "H(x, y) -> H(y, x)"),
            (
                "E(x, y) -> H(x, y); F(x, y) -> G(x, y)",
                "H(x, y) -> G(y, x); G(x, y), G(x, z) -> y = z; H(x, y), H(x, z) -> y = z",
            ),
            ("", ""),
        ];
        for (st, t) in cases {
            let p = setting(st, t);
            let n = forward_dependencies(&p).len();
            let s = forward_schedule(&p);
            assert!(s.is_partition_of(n), "{st} / {t}: {:?}", s.strata);
        }
    }

    #[test]
    fn empty_setting_has_no_strata() {
        let s = strata_of("", "");
        assert!(s.is_empty());
    }
}
