//! Static analysis for peer data exchange settings: `pde lint`.
//!
//! A multi-pass analyzer over a setting `P = (S, T, Σst, Σts, Σt)` that
//! produces [`Diagnostic`]s with **stable codes**:
//!
//! | range    | theme                                                    |
//! |----------|----------------------------------------------------------|
//! | `PDE00x` | complexity boundaries (weak acyclicity, `C_tract`, §4)   |
//! | `PDE01x` | per-dependency well-formedness                           |
//! | `PDE02x` | redundancy (duplicates, subsumption)                     |
//! | `PDE03x` | schema reachability (unpopulatable / unused relations)   |
//! | `PDE04x` | optimizer findings (what `pde optimize` would remove)    |
//!
//! Inputs come either from an already-validated [`PdeSetting`]
//! (`AnalysisInput::from_setting`, no source positions) or from split
//! bundle sections (`AnalysisInput::from_sources`), in which case every
//! diagnostic carries a span that the renderers translate back to file
//! line/column through the sections' line maps.
//!
//! See `docs/LINTS.md` for the full catalog with triggering examples.
//!
//! Beyond lints, the crate houses the `pde plan` machinery: [`plan`]
//! derives a static complexity [`Certificate`] (position ranks, Lemma 1
//! chase bounds, `C_tract` membership witnesses, solver routing and
//! budgets) and [`certificate`] re-validates every witness independently
//! of the planner. See `docs/PLAN.md`.
//!
//! The `pde terminate` machinery lives in [`termination`]: a
//! chase-termination hierarchy (weak acyclicity ⊂ joint acyclicity ⊂
//! super-weak acyclicity ⊂ critical-instance check) whose certifying
//! criterion, machine-checkable witness, and derived bounds feed the
//! certificate, the governor budgets, and the PDE05x lints. See
//! `docs/TERMINATION.md`.
//!
//! The `pde optimize` machinery lives in three sibling modules:
//! [`rewrite`] prunes subsumed/duplicate/trivial/dead dependencies under
//! a replayable [`RewriteCertificate`] (checked by [`verify_rewrite`]),
//! [`interference`] builds the read/write interference graph over the
//! survivors, and [`schedule`] condenses it into the stratified
//! [`pde_chase::DepSchedule`] the semi-naive chase executes. See
//! `docs/OPTIMIZER.md`.
//!
//! [`PdeSetting`]: pde_core::setting::PdeSetting

pub mod analyzer;
pub mod certificate;
pub mod diag;
pub mod interference;
pub mod plan;
pub mod render;
pub mod rewrite;
pub mod schedule;
pub mod termination;

pub use analyzer::{
    analyze_disjunctive, analyze_setting, AnalysisInput, LintSection, SourceParseError,
};
pub use certificate::{
    verify_certificate, Budgets, Certificate, CertificateError, ChaseCertificate, ComplexityClass,
    CycleEdge, PositionRef, RankEntry, Regime, TractCertificate, TractCounterexample,
    CERTIFICATE_VERSION, GOVERNOR_BYTES_PER_FACT, GOVERNOR_SLACK_BYTES,
};
pub use diag::{any_denied, Code, ConstraintRef, Diagnostic, Group, Severity};
pub use interference::{
    forward_dependencies, interference_graph, interference_graph_of, DepFootprint,
    InterferenceEdge, InterferenceGraph,
};
pub use plan::{plan_setting, render_certificate_text};
pub use render::{render_json, render_text, RenderContext};
pub use rewrite::{
    optimize_setting, verify_rewrite, GroupCounts, OptimizeResult, RewriteAction,
    RewriteCertificate, RewriteError, RewriteGroup, REWRITE_VERSION,
};
pub use schedule::{forward_schedule, schedule_from_graph};
pub use termination::{
    analyze_termination, render_termination_text, verify_termination, CriterionCheck, ExVarRef,
    TerminationCertificate, TerminationCriterion, TerminationWitness, CRITICAL_CHASE_STEP_LIMIT,
    TERMINATION_VERSION,
};
