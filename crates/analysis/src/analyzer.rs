//! The lint passes.
//!
//! [`AnalysisInput`] carries a setting's constraints with optional source
//! spans; [`AnalysisInput::analyze`] runs every pass and returns
//! diagnostics in a deterministic order (by group, then index, then code).
//!
//! The passes are layered: well-formedness (`PDE01x`) runs first, and if
//! it finds any error the semantic passes — which assume validated
//! dependencies — are skipped for that run.

use crate::diag::{Code, Diagnostic, Group, Severity};
use pde_chase::{chase_tgds, null_gen_for};
use pde_constraints::{
    classify, is_weakly_acyclic, parse_dependencies_spanned, CtractViolation, Dependency,
    DependencyError, DependencyGraph, DisjunctiveTgd, Egd, Orientation, Tgd,
};
use pde_core::bundle::BundleSources;
use pde_core::setting::PdeSetting;
use pde_relational::{
    exists_hom, parse_schema, Assignment, Instance, ParseError, Peer, Position, RelId, Schema,
    Span, Tuple, Value, Var,
};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A tgd within a group: `(index, tgd, source span)`.
type IndexedTgd<'a> = (usize, &'a Tgd, Option<Span>);

/// A duplicate pair: `(original index, duplicate index, duplicate's span)`.
type DupPair = (usize, usize, Option<Span>);

/// Which part of a bundle a parse error came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintSection {
    /// The `%schema` section.
    Schema,
    /// The `%st` section.
    St,
    /// The `%ts` section.
    Ts,
    /// The `%t` section.
    T,
}

impl fmt::Display for LintSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintSection::Schema => write!(f, "schema"),
            LintSection::St => write!(f, "st"),
            LintSection::Ts => write!(f, "ts"),
            LintSection::T => write!(f, "t"),
        }
    }
}

/// A parse error pinned to the bundle section it occurred in.
#[derive(Clone, Debug)]
pub struct SourceParseError {
    /// The offending section.
    pub section: LintSection,
    /// The underlying parse error (span relative to the section text).
    pub error: ParseError,
}

impl fmt::Display for SourceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{} section: {}", self.section, self.error)
    }
}

impl std::error::Error for SourceParseError {}

/// A setting's constraints, each with an optional span into its bundle
/// section, ready to be analyzed.
#[derive(Clone)]
pub struct AnalysisInput {
    schema: Arc<Schema>,
    sigma_st: Vec<(Tgd, Option<Span>)>,
    sigma_ts: Vec<(Tgd, Option<Span>)>,
    sigma_t: Vec<(Dependency, Option<Span>)>,
}

impl AnalysisInput {
    /// Analyze an already-built (hence already-validated) setting. No
    /// spans are available on this path.
    pub fn from_setting(setting: &PdeSetting) -> AnalysisInput {
        AnalysisInput {
            schema: setting.schema().clone(),
            sigma_st: setting
                .sigma_st()
                .iter()
                .map(|t| (t.clone(), None))
                .collect(),
            sigma_ts: setting
                .sigma_ts()
                .iter()
                .map(|t| (t.clone(), None))
                .collect(),
            sigma_t: setting
                .sigma_t()
                .iter()
                .map(|d| (d.clone(), None))
                .collect(),
        }
    }

    /// Build from raw constraint lists (spans absent). Unlike
    /// [`PdeSetting::new`] this never rejects: well-formedness problems
    /// surface as `PDE01x` diagnostics instead.
    pub fn from_parts(
        schema: Arc<Schema>,
        sigma_st: Vec<Tgd>,
        sigma_ts: Vec<Tgd>,
        sigma_t: Vec<Dependency>,
    ) -> AnalysisInput {
        AnalysisInput {
            schema,
            sigma_st: sigma_st.into_iter().map(|t| (t, None)).collect(),
            sigma_ts: sigma_ts.into_iter().map(|t| (t, None)).collect(),
            sigma_t: sigma_t.into_iter().map(|d| (d, None)).collect(),
        }
    }

    /// Build from split bundle sections, recording each dependency's span
    /// within its section. Only *syntax* must be valid (plus each Σst/Σts
    /// entry being a tgd at all); semantic problems become diagnostics.
    pub fn from_sources(sources: &BundleSources) -> Result<AnalysisInput, SourceParseError> {
        let at =
            |section: LintSection| move |error: ParseError| SourceParseError { section, error };
        let schema = Arc::new(parse_schema(&sources.schema.text).map_err(at(LintSection::Schema))?);
        let tgds_of = |text: &str, section: LintSection| {
            let deps = parse_dependencies_spanned(&schema, text).map_err(at(section))?;
            deps.into_iter()
                .map(|(d, span)| match d {
                    Dependency::Tgd(t) => Ok((t, Some(span))),
                    Dependency::Egd(_) => Err(SourceParseError {
                        section,
                        error: ParseError::at("expected a tgd, found an egd", span),
                    }),
                })
                .collect::<Result<Vec<_>, _>>()
        };
        let sigma_st = tgds_of(&sources.st.text, LintSection::St)?;
        let sigma_ts = tgds_of(&sources.ts.text, LintSection::Ts)?;
        let sigma_t = parse_dependencies_spanned(&schema, &sources.t.text)
            .map_err(at(LintSection::T))?
            .into_iter()
            .map(|(d, span)| (d, Some(span)))
            .collect();
        Ok(AnalysisInput {
            schema,
            sigma_st,
            sigma_ts,
            sigma_t,
        })
    }

    /// The schema the constraints range over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Run every pass. Diagnostics come back sorted by (group, index,
    /// code); global diagnostics (no constraint reference) come first.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut diags = self.validity_pass();
        if diags.iter().any(|d| d.severity == Severity::Error) {
            sort(&mut diags);
            return diags;
        }
        self.weak_acyclicity_pass(&mut diags);
        self.ctract_pass(&mut diags);
        self.boundary_pass(&mut diags);
        self.wildcard_pass(&mut diags);
        self.trivial_egd_pass(&mut diags);
        self.duplicate_pass(&mut diags);
        self.subsumption_pass(&mut diags);
        self.reachability_pass(&mut diags);
        self.optimizer_pass(&mut diags);
        sort(&mut diags);
        diags
    }

    fn each_tgd_group(&self) -> [(Group, Orientation, Vec<IndexedTgd<'_>>); 3] {
        let st = self
            .sigma_st
            .iter()
            .enumerate()
            .map(|(i, (t, s))| (i, t, *s))
            .collect();
        let ts = self
            .sigma_ts
            .iter()
            .enumerate()
            .map(|(i, (t, s))| (i, t, *s))
            .collect();
        let t = self
            .sigma_t
            .iter()
            .enumerate()
            .filter_map(|(i, (d, s))| d.as_tgd().map(|t| (i, t, *s)))
            .collect();
        [
            (Group::St, Orientation::SourceToTarget, st),
            (Group::Ts, Orientation::TargetToSource, ts),
            (Group::T, Orientation::TargetTarget, t),
        ]
    }

    /// PDE010–PDE017: per-dependency well-formedness.
    fn validity_pass(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (group, orientation, tgds) in self.each_tgd_group() {
            for (i, tgd, span) in tgds {
                if let Err(e) = tgd.validate(&self.schema, orientation) {
                    out.push(
                        Diagnostic::new(code_of(&e), e.to_string())
                            .on(group, i)
                            .with_span(span),
                    );
                }
                self.arity_check(
                    tgd.premise.atoms.iter().chain(&tgd.conclusion.atoms),
                    group,
                    i,
                    span,
                    &mut out,
                );
            }
        }
        for (i, (d, span)) in self.sigma_t.iter().enumerate() {
            if let Some(egd) = d.as_egd() {
                if let Err(e) = egd.validate(&self.schema) {
                    out.push(
                        Diagnostic::new(code_of(&e), e.to_string())
                            .on(Group::T, i)
                            .with_span(*span),
                    );
                }
                self.arity_check(egd.premise.atoms.iter(), Group::T, i, *span, &mut out);
            }
        }
        out
    }

    fn arity_check<'a>(
        &self,
        atoms: impl Iterator<Item = &'a pde_relational::Atom>,
        group: Group,
        index: usize,
        span: Option<Span>,
        out: &mut Vec<Diagnostic>,
    ) {
        for atom in atoms {
            let expected = self.schema.arity(atom.rel) as usize;
            if atom.terms.len() != expected {
                out.push(
                    Diagnostic::new(
                        Code::ArityMismatch,
                        format!(
                            "atom over {} has {} terms but the relation has arity {expected}",
                            self.schema.name(atom.rel),
                            atom.terms.len()
                        ),
                    )
                    .on(group, index)
                    .with_span(span),
                );
            }
        }
    }

    /// PDE001 / PDE050 / PDE051 / PDE052: chase termination of Σt's tgds.
    ///
    /// Weak acyclicity (Def. 5) is checked first. When it fails, the
    /// stronger criteria of [`crate::termination`] get a chance to certify
    /// termination before anything is downgraded to an error: joint or
    /// super-weak acyclicity yields a `PDE050` note, the critical-instance
    /// check alone yields a `PDE051` warning (its bound may be loose), and
    /// only when the whole hierarchy fails do `PDE001` + `PDE052` fire.
    fn weak_acyclicity_pass(&self, out: &mut Vec<Diagnostic>) {
        let t_tgds: Vec<IndexedTgd<'_>> = self
            .sigma_t
            .iter()
            .enumerate()
            .filter_map(|(i, (d, s))| d.as_tgd().map(|t| (i, t, *s)))
            .collect();
        if t_tgds.is_empty() {
            return;
        }
        let graph = DependencyGraph::new(&self.schema, t_tgds.iter().map(|(_, t, _)| *t));
        let Some(cycle) = graph.find_special_cycle() else {
            return;
        };
        let mut path = self.position(cycle[0].from);
        for e in &cycle {
            path.push_str(if e.special { " =(special)=> " } else { " -> " });
            path.push_str(&self.position(e.to));
        }
        let culprit = cycle_culprit(&t_tgds, &cycle);
        let locate = |d: Diagnostic| match culprit {
            Some((i, span)) => d.on(Group::T, i).with_span(span),
            None => d,
        };
        // The criterion verdicts are instance-independent; lints have no
        // instance, so bounds are evaluated at a nominal active domain.
        let owned: Vec<Tgd> = t_tgds.iter().map(|(_, t, _)| (*t).clone()).collect();
        let tc = crate::termination::analyze_tgds(&self.schema, &owned, 1);
        let trail = tc
            .trail
            .iter()
            .map(|c| {
                format!(
                    "{}: {}",
                    c.criterion,
                    if c.holds { "certified" } else { "failed" }
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        use crate::termination::TerminationCriterion as TC;
        match tc.criterion {
            Some(TC::WeakAcyclicity) => {} // unreachable: a special cycle exists
            Some(c @ (TC::JointAcyclicity | TC::SuperWeakAcyclicity)) => out.push(locate(
                Diagnostic::new(
                    Code::TerminatesBeyondWeakAcyclicity,
                    format!(
                        "target tgds are not weakly acyclic (witness cycle: {path}), but \
                         {c} certifies chase termination with a finite derived bound"
                    ),
                )
                .note(format!("criterion trail: {trail}"))
                .note(
                    "the planner routes this setting through the certified-terminating \
                     regime with budgets from the certifying criterion",
                ),
            )),
            Some(TC::CriticalInstance) => out.push(locate(
                Diagnostic::new(
                    Code::CriticalInstanceOnly,
                    format!(
                        "target tgds are not weakly acyclic (witness cycle: {path}) and \
                         termination is certified only by the critical-instance check; \
                         the derived bound may be loose"
                    ),
                )
                .note(format!("criterion trail: {trail}"))
                .note(
                    "the critical-instance bound grows with the saturated chase of the \
                     all-constants instance, not with a Lemma 1 recurrence",
                ),
            )),
            None => {
                out.push(locate(
                    Diagnostic::new(
                        Code::WeakAcyclicityViolation,
                        format!(
                            "target tgds are not weakly acyclic, so the chase may not \
                             terminate and no polynomial solution-existence bound applies \
                             (Def. 5, Lemma 1); witness cycle: {path}"
                        ),
                    )
                    .suggest(
                        "break the cycle: remove an existential that feeds a position \
                         reachable from itself, or make the offending tgd full",
                    ),
                ));
                out.push(locate(
                    Diagnostic::new(
                        Code::AllTerminationCriteriaFail,
                        "every criterion of the termination hierarchy fails; the chase \
                         may diverge and the governor gets no finite budget"
                            .to_string(),
                    )
                    .note(format!("criterion trail: {trail}")),
                ));
            }
        }
    }

    fn position(&self, p: Position) -> String {
        format!("{}.{}", self.schema.name(p.rel), p.attr)
    }

    /// PDE002: outside `C_tract` (only meaningful when Σt is empty — with
    /// target constraints the Thm. 4 guarantee is out of scope anyway and
    /// the `PDE003`/`PDE004` boundary lints take over).
    fn ctract_pass(&self, out: &mut Vec<Diagnostic>) {
        if !self.sigma_t.is_empty() {
            return;
        }
        let st: Vec<Tgd> = self.sigma_st.iter().map(|(t, _)| t.clone()).collect();
        let ts: Vec<Tgd> = self.sigma_ts.iter().map(|(t, _)| t.clone()).collect();
        let report = classify(&self.schema, &st, &ts);
        if report.in_ctract() {
            return;
        }
        let mut emit = |v: &CtractViolation| {
            let i = tgd_index(v);
            out.push(
                Diagnostic::new(Code::OutsideCtract, v.to_string())
                    .on(Group::Ts, i)
                    .with_span(self.sigma_ts.get(i).and_then(|(_, s)| *s))
                    .note(
                        "the setting falls outside C_tract (Def. 9); solution existence \
                         is NP-complete in general (Thm. 2)",
                    ),
            );
        };
        for v in &report.condition1 {
            emit(v);
        }
        if !report.holds2_1() && !report.holds2_2() {
            for v in report.condition2_1.iter().chain(&report.condition2_2) {
                emit(v);
            }
        }
    }

    /// PDE003 / PDE004: the §4 intractability boundaries. Both need a
    /// nonempty Σts — pure data exchange (Σts = ∅) stays tractable with
    /// egds and full tgds in Σt.
    fn boundary_pass(&self, out: &mut Vec<Diagnostic>) {
        if self.sigma_ts.is_empty() {
            return;
        }
        for (i, (d, span)) in self.sigma_t.iter().enumerate() {
            match d {
                Dependency::Egd(_) => out.push(
                    Diagnostic::new(
                        Code::TargetEgdBoundary,
                        "target egd combined with a nonempty Σts: solution existence \
                         is NP-complete for such settings (§4)",
                    )
                    .on(Group::T, i)
                    .with_span(*span)
                    .note("with Σts = ∅ (pure data exchange) target egds stay tractable"),
                ),
                Dependency::Tgd(t) if t.is_full() => out.push(
                    Diagnostic::new(
                        Code::FullTargetTgdBoundary,
                        "full target tgd combined with a nonempty Σts: solution \
                         existence is NP-complete for such settings (§4)",
                    )
                    .on(Group::T, i)
                    .with_span(*span)
                    .note("with Σts = ∅ (pure data exchange) full target tgds stay tractable"),
                ),
                Dependency::Tgd(_) => {}
            }
        }
    }

    /// PDE018: a universal variable that occurs exactly once in the
    /// premise and never in the conclusion constrains nothing. Variables
    /// prefixed with `_` are exempt (the idiom for "intentionally
    /// projected away").
    fn wildcard_pass(&self, out: &mut Vec<Diagnostic>) {
        for (group, _, tgds) in self.each_tgd_group() {
            for (i, tgd, span) in tgds {
                let concl = tgd.conclusion.variables();
                for v in tgd.universals() {
                    if tgd.premise.occurrences_of(v) == 1
                        && !concl.contains(&v)
                        && !v.to_string().starts_with('_')
                    {
                        out.push(
                            Diagnostic::new(
                                Code::WildcardUniversal,
                                format!(
                                    "universal variable {v} occurs once and constrains nothing"
                                ),
                            )
                            .on(group, i)
                            .with_span(span)
                            .suggest(format!("rename to _{v} to mark it intentional")),
                        );
                    }
                }
            }
        }
    }

    /// PDE019: egds of the form `… -> x = x`.
    fn trivial_egd_pass(&self, out: &mut Vec<Diagnostic>) {
        for (i, (d, span)) in self.sigma_t.iter().enumerate() {
            if let Some(egd) = d.as_egd() {
                if egd.is_trivial() {
                    out.push(
                        Diagnostic::new(
                            Code::TrivialEgd,
                            format!("egd equates {} with itself and can never fire", egd.lhs),
                        )
                        .on(Group::T, i)
                        .with_span(*span)
                        .suggest("delete the egd"),
                    );
                }
            }
        }
    }

    /// PDE020: exact duplicates within a group.
    fn duplicate_pass(&self, out: &mut Vec<Diagnostic>) {
        fn dups<T: PartialEq>(items: &[(T, Option<Span>)]) -> Vec<(usize, usize, Option<Span>)> {
            let mut found = Vec::new();
            for j in 1..items.len() {
                if let Some(i) = (0..j).find(|&i| items[i].0 == items[j].0) {
                    found.push((i, j, items[j].1));
                }
            }
            found
        }
        let groups: [(Group, Vec<DupPair>); 3] = [
            (Group::St, dups(&self.sigma_st)),
            (Group::Ts, dups(&self.sigma_ts)),
            (Group::T, dups(&self.sigma_t)),
        ];
        for (group, pairs) in groups {
            for (i, j, span) in pairs {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateDependency,
                        format!("exact duplicate of {group} #{i}"),
                    )
                    .on(group, j)
                    .with_span(span)
                    .suggest("remove the duplicate"),
                );
            }
        }
    }

    /// PDE021: a tgd whose effect is already guaranteed by another tgd of
    /// the same group. Decided by freezing the candidate's premise to
    /// constants, chasing with the other tgd, and looking for a
    /// homomorphism of the candidate's conclusion that fixes the frontier.
    fn subsumption_pass(&self, out: &mut Vec<Diagnostic>) {
        for (group, _, tgds) in self.each_tgd_group() {
            for &(i, ti, span) in &tgds {
                if let Some(&(j, _, _)) = tgds
                    .iter()
                    .find(|&&(j, tj, _)| j != i && tj != ti && subsumed_by(&self.schema, ti, tj))
                {
                    out.push(
                        Diagnostic::new(
                            Code::SubsumedTgd,
                            format!(
                                "tgd is implied by {group} #{j}: chasing this premise with \
                                 #{j} already satisfies this conclusion"
                            ),
                        )
                        .on(group, i)
                        .with_span(span)
                        .suggest("remove this tgd; it does not change the semantics"),
                    );
                }
            }
        }
    }

    /// PDE030 / PDE031: relation-level reachability. A target relation
    /// read by some premise but populated by no tgd can only ever hold
    /// input facts; a relation in no dependency at all is dead weight.
    fn reachability_pass(&self, out: &mut Vec<Diagnostic>) {
        let mut populatable: HashSet<RelId> = HashSet::new();
        for (t, _) in &self.sigma_st {
            populatable.extend(t.conclusion.atoms.iter().map(|a| a.rel));
        }
        for (d, _) in &self.sigma_t {
            if let Some(t) = d.as_tgd() {
                populatable.extend(t.conclusion.atoms.iter().map(|a| a.rel));
            }
        }
        let mut reported: HashSet<RelId> = HashSet::new();
        let mut check_read = |rel: RelId,
                              group: Group,
                              index: usize,
                              span: Option<Span>,
                              out: &mut Vec<Diagnostic>| {
            if !populatable.contains(&rel) && reported.insert(rel) {
                out.push(
                    Diagnostic::new(
                        Code::UnpopulatedTargetRelation,
                        format!(
                            "target relation {} is read here but no Σst or Σt tgd can \
                             populate it; only input facts can ever appear in it",
                            self.schema.name(rel)
                        ),
                    )
                    .on(group, index)
                    .with_span(span),
                );
            }
        };
        for (i, (t, span)) in self.sigma_ts.iter().enumerate() {
            for atom in &t.premise.atoms {
                check_read(atom.rel, Group::Ts, i, *span, out);
            }
        }
        for (i, (d, span)) in self.sigma_t.iter().enumerate() {
            let premise = match d {
                Dependency::Tgd(t) => &t.premise,
                Dependency::Egd(e) => &e.premise,
            };
            for atom in &premise.atoms {
                check_read(atom.rel, Group::T, i, *span, out);
            }
        }

        let mut mentioned: HashSet<RelId> = HashSet::new();
        for (group, _, tgds) in self.each_tgd_group() {
            let _ = group;
            for (_, t, _) in tgds {
                mentioned.extend(t.premise.atoms.iter().map(|a| a.rel));
                mentioned.extend(t.conclusion.atoms.iter().map(|a| a.rel));
            }
        }
        for (d, _) in &self.sigma_t {
            if let Some(e) = d.as_egd() {
                mentioned.extend(e.premise.atoms.iter().map(|a| a.rel));
            }
        }
        for rel in self.schema.rel_ids() {
            if !mentioned.contains(&rel) {
                out.push(Diagnostic::new(
                    Code::UnusedRelation,
                    format!(
                        "{} relation {} is not mentioned by any dependency",
                        self.schema.peer(rel),
                        self.schema.name(rel)
                    ),
                ));
            }
        }
    }

    /// PDE040 / PDE041 / PDE042: optimizer findings — redundancy the
    /// syntactic `PDE02x`/`PDE03x` passes miss but the rewrite passes of
    /// [`crate::rewrite`] would eliminate.
    fn optimizer_pass(&self, out: &mut Vec<Diagnostic>) {
        self.egd_subsumption_pass(out);
        self.alpha_duplicate_pass(out);
        self.dead_relation_pass(out);
    }

    /// PDE040: egd subsumption. `PDE021` only covers tgds; an egd whose
    /// every firing is already forced by another egd is just as redundant.
    fn egd_subsumption_pass(&self, out: &mut Vec<Diagnostic>) {
        let egds: Vec<(usize, &Egd, Option<Span>)> = self
            .sigma_t
            .iter()
            .enumerate()
            .filter_map(|(i, (d, s))| d.as_egd().map(|e| (i, e, *s)))
            .collect();
        for &(i, ei, span) in &egds {
            if ei.is_trivial() {
                continue; // PDE019's territory
            }
            let key_i = crate::rewrite::canonical_key(&self.schema, &self.sigma_t[i].0);
            if let Some(&(j, _, _)) = egds.iter().find(|&&(j, ej, _)| {
                j != i
                    && key_i != crate::rewrite::canonical_key(&self.schema, &self.sigma_t[j].0)
                    && crate::rewrite::egd_subsumed_by(&self.schema, ei, ej)
            }) {
                out.push(
                    Diagnostic::new(
                        Code::SubsumedEgd,
                        format!(
                            "egd is implied by Σt #{j}: whenever this premise matches, \
                             #{j} already forces the same equality"
                        ),
                    )
                    .on(Group::T, i)
                    .with_span(span)
                    .suggest("remove this egd; it does not change the semantics"),
                );
            }
        }
    }

    /// PDE041: duplicates up to variable renaming. `PDE020` compares
    /// dependencies syntactically; alpha-renamed copies slip through it
    /// while still doubling trigger work in the chase.
    fn alpha_duplicate_pass(&self, out: &mut Vec<Diagnostic>) {
        let check =
            |group: Group, items: Vec<(Dependency, Option<Span>)>, out: &mut Vec<Diagnostic>| {
                let keys: Vec<String> = items
                    .iter()
                    .map(|(d, _)| crate::rewrite::canonical_key(&self.schema, d))
                    .collect();
                for j in 1..items.len() {
                    if (0..j).any(|i| items[i].0 == items[j].0) {
                        continue; // exact duplicate: PDE020 already reports it
                    }
                    if let Some(i) = (0..j).find(|&i| keys[i] == keys[j]) {
                        out.push(
                            Diagnostic::new(
                                Code::AlphaDuplicateDependency,
                                format!("duplicate of {group} #{i} up to variable renaming"),
                            )
                            .on(group, j)
                            .with_span(items[j].1)
                            .suggest("remove the duplicate"),
                        );
                    }
                }
            };
        let tgds = |v: &[(Tgd, Option<Span>)]| {
            v.iter()
                .map(|(t, s)| (Dependency::Tgd(t.clone()), *s))
                .collect()
        };
        check(Group::St, tgds(&self.sigma_st), out);
        check(Group::Ts, tgds(&self.sigma_ts), out);
        check(Group::T, self.sigma_t.clone(), out);
    }

    /// PDE042: premise-aware dead relations. `PDE030`'s populatable set
    /// asks only whether some tgd *concludes* a relation; here a
    /// conclusion counts only when that tgd's whole premise is itself
    /// populatable (seeded with every source relation — the input is
    /// unknown statically). A relation populatable for `PDE030` but not
    /// here can never receive a chased fact, so `PDE030` stays silent and
    /// this lint takes over.
    fn dead_relation_pass(&self, out: &mut Vec<Diagnostic>) {
        let mut naive: HashSet<RelId> = HashSet::new();
        for (t, _) in &self.sigma_st {
            naive.extend(t.conclusion.atoms.iter().map(|a| a.rel));
        }
        for (d, _) in &self.sigma_t {
            if let Some(t) = d.as_tgd() {
                naive.extend(t.conclusion.atoms.iter().map(|a| a.rel));
            }
        }
        let mut pop: HashSet<RelId> = self
            .schema
            .rel_ids()
            .filter(|&r| self.schema.peer(r) == Peer::Source)
            .collect();
        let all_tgds: Vec<&Tgd> = self
            .sigma_st
            .iter()
            .chain(&self.sigma_ts)
            .map(|(t, _)| t)
            .chain(self.sigma_t.iter().filter_map(|(d, _)| d.as_tgd()))
            .collect();
        loop {
            let mut changed = false;
            for t in &all_tgds {
                if t.premise.atoms.iter().all(|a| pop.contains(&a.rel)) {
                    for a in &t.conclusion.atoms {
                        changed |= pop.insert(a.rel);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut reported: HashSet<RelId> = HashSet::new();
        let mut check_read = |rel: RelId,
                              group: Group,
                              index: usize,
                              span: Option<Span>,
                              out: &mut Vec<Diagnostic>| {
            if naive.contains(&rel) && !pop.contains(&rel) && reported.insert(rel) {
                out.push(
                    Diagnostic::new(
                        Code::DeadRelation,
                        format!(
                            "relation {} is read here but every tgd concluding it has an \
                             unpopulatable premise; no chase derivation can ever add a \
                             fact to it",
                            self.schema.name(rel)
                        ),
                    )
                    .on(group, index)
                    .with_span(span)
                    .note("only input facts can ever appear in it (premise-aware PDE030)"),
                );
            }
        };
        for (i, (t, span)) in self.sigma_ts.iter().enumerate() {
            for atom in &t.premise.atoms {
                check_read(atom.rel, Group::Ts, i, *span, out);
            }
        }
        for (i, (d, span)) in self.sigma_t.iter().enumerate() {
            let premise = match d {
                Dependency::Tgd(t) => &t.premise,
                Dependency::Egd(e) => &e.premise,
            };
            for atom in &premise.atoms {
                check_read(atom.rel, Group::T, i, *span, out);
            }
        }
    }
}

/// Analyze an already-built setting (the auto-lint entry point).
pub fn analyze_setting(setting: &PdeSetting) -> Vec<Diagnostic> {
    AnalysisInput::from_setting(setting).analyze()
}

/// PDE005 for the disjunctive extension: plain tgd lints do not apply, but
/// a ts-tgd with two or more alternatives is itself an intractability
/// boundary (§4 encodes 3-colorability with full disjuncts).
pub fn analyze_disjunctive(_schema: &Schema, sigma_ts: &[DisjunctiveTgd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, d) in sigma_ts.iter().enumerate() {
        if d.disjuncts.len() >= 2 {
            out.push(
                Diagnostic::new(
                    Code::DisjunctiveTsBoundary,
                    format!(
                        "disjunctive ts-tgd with {} alternatives: solution existence for \
                         disjunctive Σts is NP-complete even when every disjunct is full (§4)",
                        d.disjuncts.len()
                    ),
                )
                .on(Group::Ts, i),
            );
        }
    }
    out
}

fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| {
        let (g, i) = d.constraint.map_or((0u8, 0usize), |c| {
            (
                match c.group {
                    Group::St => 1,
                    Group::Ts => 2,
                    Group::T => 3,
                },
                c.index,
            )
        });
        (g, i, d.code)
    });
}

fn code_of(e: &DependencyError) -> Code {
    match e {
        DependencyError::UnboundConclusionVar(_) => Code::UnboundConclusionVar,
        DependencyError::ExistentialInPremise(_) => Code::ExistentialInPremise,
        DependencyError::UnusedExistential(_) => Code::UnusedExistential,
        DependencyError::WrongPeer { .. } => Code::WrongPeer,
        DependencyError::EmptyPremise => Code::EmptyPremise,
        DependencyError::EmptyConclusion => Code::EmptyConclusion,
        DependencyError::EgdVarNotInPremise(_) => Code::EgdVarNotInPremise,
    }
}

fn tgd_index(v: &CtractViolation) -> usize {
    match v {
        CtractViolation::RepeatedMarkedVariable { tgd_index, .. }
        | CtractViolation::MultiLiteralLhs { tgd_index, .. }
        | CtractViolation::BadMarkedPair { tgd_index, .. } => *tgd_index,
    }
}

/// The first Σt tgd (by group index) that contributes an edge of the
/// special-cycle witness, with its span: the dependency PDE001/PDE05x
/// diagnostics point at. A tgd contributes a non-special edge `p -> q`
/// when some frontier variable occurs at premise position `p` and
/// conclusion position `q`, and a special edge when a frontier variable
/// occurs at `p` while an existential occurs at `q`.
fn cycle_culprit(
    t_tgds: &[IndexedTgd<'_>],
    cycle: &[pde_constraints::Edge],
) -> Option<(usize, Option<Span>)> {
    use crate::termination::{conclusion_positions, premise_positions};
    for &(i, t, span) in t_tgds {
        for e in cycle {
            let from_frontier = t
                .frontier()
                .iter()
                .any(|&v| premise_positions(t, v).contains(&e.from));
            if !from_frontier {
                continue;
            }
            let hits = if e.special {
                t.existentials
                    .iter()
                    .any(|&y| conclusion_positions(t, y).contains(&e.to))
            } else {
                t.frontier().iter().any(|&v| {
                    premise_positions(t, v).contains(&e.from)
                        && conclusion_positions(t, v).contains(&e.to)
                })
            };
            if hits {
                return Some((i, span));
            }
        }
    }
    None
}

/// Does chasing `sub`'s frozen premise with `by` already satisfy `sub`'s
/// conclusion (with the frontier held fixed)? If so, `sub` is redundant.
/// Shared with the optimizer ([`crate::rewrite`]), whose verifier re-runs
/// the same check independently of the pass that recorded it.
pub(crate) fn subsumed_by(schema: &Arc<Schema>, sub: &Tgd, by: &Tgd) -> bool {
    if !is_weakly_acyclic(schema, [by]) {
        return false;
    }
    let freeze = |v: Var| Some(Value::constant(format!("$lint${v}")));
    let mut frozen = Instance::new(schema.clone());
    for atom in &sub.premise.atoms {
        let Some(values) = atom.ground(&freeze) else {
            return false;
        };
        frozen.insert(atom.rel, Tuple::new(values));
    }
    let gen = null_gen_for(&frozen);
    let Some(chased) = chase_tgds(frozen, std::slice::from_ref(by), &gen).into_success() else {
        return false;
    };
    let mut partial = Assignment::new();
    for v in sub.frontier() {
        partial.bind(v, freeze(v).expect("freeze is total"));
    }
    exists_hom(&sub.conclusion.atoms, &chased, &partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_constraints::parse_tgds;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn input(schema: &str, st: &str, ts: &str, t: &str) -> AnalysisInput {
        let sources = pde_core::bundle::split_sections(&format!(
            "%schema\n{schema}\n%st\n{st}\n%ts\n{ts}\n%t\n{t}\n"
        ))
        .unwrap();
        AnalysisInput::from_sources(&sources).unwrap()
    }

    #[test]
    fn clean_setting_has_no_diagnostics() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .analyze();
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }

    #[test]
    fn non_weakly_acyclic_target_reports_pde001_with_witness() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> exists z . H(y, z)",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::WeakAcyclicityViolation)
            .expect("PDE001");
        assert_eq!(d.severity, Severity::Error);
        // Satellite of the termination work: the message names the full
        // position cycle and the diagnostic points at a Σt dependency on
        // the witness cycle.
        assert!(d.message.contains("witness cycle"), "{}", d.message);
        assert!(d.message.contains("H.1"), "{}", d.message);
        let c = d.constraint.expect("pinned to a cycle dependency");
        assert_eq!(c.group, Group::T);
        assert_eq!(c.index, 0);
        assert!(d.span.is_some(), "span points into the %t section");
        // Every criterion of the hierarchy fails here, so PDE052 rides
        // along with the criterion trail.
        let d = diags
            .iter()
            .find(|d| d.code == Code::AllTerminationCriteriaFail)
            .expect("PDE052");
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.notes[0].contains("critical-instance: failed"),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn jointly_acyclic_target_reports_pde050_note_not_pde001() {
        // Not weakly acyclic (C.1 =(special)=> ... cycle through A), but
        // jointly acyclic: the existential z's nulls never re-enter the
        // premise position that creates them.
        let diags = input(
            "source SA/1; source SB/1; target A/1; target B/1; target C/2",
            "SA(x) -> A(x); SB(x) -> B(x)",
            "",
            "A(x), B(x) -> exists z . C(x, z); C(x, y) -> A(y)",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::TerminatesBeyondWeakAcyclicity)
            .expect("PDE050");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("joint-acyclicity"), "{}", d.message);
        assert!(d.message.contains("witness cycle"), "{}", d.message);
        assert_eq!(d.constraint.map(|c| c.group), Some(Group::T));
        assert!(d.span.is_some());
        assert!(!codes(&diags).contains(&"PDE001"), "{:?}", codes(&diags));
        assert!(!codes(&diags).contains(&"PDE052"), "{:?}", codes(&diags));
    }

    #[test]
    fn critical_instance_only_reports_pde051_warning() {
        let diags = input(
            "source S/1; target A/1; target R/2",
            "S(x) -> A(x)",
            "",
            "A(x) -> exists y . R(x, y); R(x, y) -> R(y, x); R(w, w) -> A(w)",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::CriticalInstanceOnly)
            .expect("PDE051");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("critical-instance"), "{}", d.message);
        assert!(
            d.notes[0].contains("super-weak-acyclicity: failed"),
            "{:?}",
            d.notes
        );
        assert!(!codes(&diags).contains(&"PDE001"), "{:?}", codes(&diags));
        assert!(!codes(&diags).contains(&"PDE050"), "{:?}", codes(&diags));
    }

    #[test]
    fn outside_ctract_reports_pde002_per_violation() {
        // Repeated marked variable in a ts-tgd LHS: condition 1 fails.
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, x) -> E(x, x)",
            "",
        )
        .analyze();
        assert!(
            diags.iter().any(|d| d.code == Code::OutsideCtract),
            "{:?}",
            codes(&diags)
        );
        let d = diags
            .iter()
            .find(|d| d.code == Code::OutsideCtract)
            .unwrap();
        assert_eq!(d.constraint.unwrap().group, Group::Ts);
        assert!(d.span.is_some());
    }

    #[test]
    fn pde002_silent_when_target_constraints_present() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, x) -> E(x, x)",
            "H(x, y), H(x, z) -> y = z",
        )
        .analyze();
        assert!(!diags.iter().any(|d| d.code == Code::OutsideCtract));
        // Instead the egd boundary fires.
        assert!(diags.iter().any(|d| d.code == Code::TargetEgdBoundary));
    }

    #[test]
    fn boundary_lints_need_nonempty_ts() {
        // Pure data exchange: egds and full tgds in Σt are fine.
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> K(x, y); H(x, y), H(x, z) -> y = z",
        )
        .analyze();
        assert!(!diags.iter().any(|d| d.code == Code::TargetEgdBoundary));
        assert!(!diags.iter().any(|d| d.code == Code::FullTargetTgdBoundary));
    }

    #[test]
    fn full_target_tgd_with_ts_reports_pde004() {
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y)",
            "K(x, y) -> E(x, y)",
            "H(x, y) -> K(x, y)",
        )
        .analyze();
        assert!(
            diags.iter().any(|d| d.code == Code::FullTargetTgdBoundary),
            "{:?}",
            codes(&diags)
        );
    }

    #[test]
    fn invalid_dependency_reports_pde01x_and_skips_semantic_passes() {
        let s = Arc::new(pde_relational::parse_schema("source E/2; target H/2").unwrap());
        // Conclusion variable z is unbound: built programmatically because
        // the parser would accept it too (existentials must be declared).
        let bad = parse_tgds(&s, "E(x, y) -> H(x, z)").unwrap();
        let diags = AnalysisInput::from_parts(s, bad, vec![], vec![]).analyze();
        assert_eq!(codes(&diags), ["PDE010"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn arity_mismatch_reports_pde017() {
        use pde_relational::{Atom, Conjunction, Term};
        let s = Arc::new(pde_relational::parse_schema("source E/2; target H/2").unwrap());
        let e = s.rel_id("E").unwrap();
        let h = s.rel_id("H").unwrap();
        // Hand-built atom with the wrong number of terms (the parser
        // rejects this, so only programmatic inputs can carry it).
        let bad = Tgd::full(
            Conjunction::new(vec![Atom {
                rel: e,
                terms: vec![Term::Var(Var::new("x"))],
            }]),
            Conjunction::new(vec![Atom {
                rel: h,
                terms: vec![Term::Var(Var::new("x")), Term::Var(Var::new("x"))],
            }]),
        );
        let diags = AnalysisInput::from_parts(s, vec![bad], vec![], vec![]).analyze();
        assert!(codes(&diags).contains(&"PDE017"), "{:?}", codes(&diags));
    }

    #[test]
    fn wildcard_universal_is_a_note_and_underscore_exempts() {
        let diags = input("source E/2; target H/1", "E(x, y) -> H(x)", "", "").analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::WildcardUniversal)
            .expect("PDE018");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains('y'));
        let diags = input("source E/2; target H/1", "E(x, _y) -> H(x)", "", "").analyze();
        assert!(!diags.iter().any(|d| d.code == Code::WildcardUniversal));
    }

    #[test]
    fn join_variables_are_not_wildcards() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, z), E(z, y) -> H(x, y)",
            "",
            "",
        )
        .analyze();
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }

    #[test]
    fn trivial_egd_reports_pde019() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> x = x",
        )
        .analyze();
        assert!(codes(&diags).contains(&"PDE019"), "{:?}", codes(&diags));
    }

    #[test]
    fn duplicates_report_pde020_not_pde021() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y); E(x, y) -> H(x, y)",
            "",
            "",
        )
        .analyze();
        assert!(codes(&diags).contains(&"PDE020"), "{:?}", codes(&diags));
        assert!(!codes(&diags).contains(&"PDE021"));
        let d = diags
            .iter()
            .find(|d| d.code == Code::DuplicateDependency)
            .unwrap();
        assert_eq!(d.constraint.unwrap().index, 1);
    }

    #[test]
    fn subsumed_tgd_reports_pde021() {
        // The second tgd asks for a weaker conclusion than the first
        // already guarantees from the same premise.
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y), K(x, y); E(x, y) -> H(x, y)",
            "",
            "",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::SubsumedTgd)
            .expect("PDE021");
        assert_eq!(d.constraint.unwrap().index, 1);
        assert!(d.message.contains("#0"));
    }

    #[test]
    fn independent_tgds_are_not_subsumed() {
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y); E(x, y) -> K(y, x)",
            "",
            "",
        )
        .analyze();
        assert!(!codes(&diags).contains(&"PDE021"), "{:?}", codes(&diags));
    }

    #[test]
    fn subsumption_respects_existentials() {
        // H(x, z) for an existential z is implied by H(x, y) from E(x, y):
        // map z to the frozen y.
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y); E(x, y) -> exists z . H(x, z)",
            "",
            "",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::SubsumedTgd)
            .expect("PDE021");
        assert_eq!(d.constraint.unwrap().index, 1);
    }

    #[test]
    fn unpopulated_target_relation_reports_pde030() {
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y)",
            "K(x, y) -> E(x, y)",
            "",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::UnpopulatedTargetRelation)
            .expect("PDE030");
        assert!(d.message.contains('K'));
    }

    #[test]
    fn unused_relation_reports_pde031() {
        let diags = input(
            "source E/2; source F/3; target H/2",
            "E(x, y) -> H(x, y)",
            "",
            "",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::UnusedRelation)
            .expect("PDE031");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains('F'));
    }

    #[test]
    fn subsumed_egd_reports_pde040() {
        // The two-atom egd only fires on symmetric H pairs; the one-atom
        // egd already forces the same equality on every H tuple.
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> x = y; H(x, y), H(y, x) -> x = y",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::SubsumedEgd)
            .expect("PDE040");
        assert_eq!(d.constraint.unwrap().index, 1);
        assert!(d.message.contains("#0"));
    }

    #[test]
    fn independent_egds_are_not_pde040() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z; H(x, y), H(z, y) -> x = z",
        )
        .analyze();
        assert!(!codes(&diags).contains(&"PDE040"), "{:?}", codes(&diags));
    }

    #[test]
    fn alpha_renamed_duplicate_reports_pde041_not_pde020() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y); E(u, v) -> H(u, v)",
            "",
            "",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::AlphaDuplicateDependency)
            .expect("PDE041");
        assert_eq!(d.constraint.unwrap().index, 1);
        assert!(!codes(&diags).contains(&"PDE020"), "{:?}", codes(&diags));
    }

    #[test]
    fn exact_duplicate_stays_pde020_not_pde041() {
        let diags = input(
            "source E/2; target H/2",
            "E(x, y) -> H(x, y); E(x, y) -> H(x, y)",
            "",
            "",
        )
        .analyze();
        assert!(codes(&diags).contains(&"PDE020"), "{:?}", codes(&diags));
        assert!(!codes(&diags).contains(&"PDE041"), "{:?}", codes(&diags));
    }

    #[test]
    fn dead_relation_reports_pde042_where_pde030_is_silent() {
        // G is never concluded: PDE030. K *is* concluded, but only by the
        // tgd reading dead G, so no derivation ever populates it: PDE042.
        let diags = input(
            "source E/2; target G/2; target H/2; target K/2",
            "E(x, y) -> H(x, y)",
            "",
            "G(x, y) -> K(x, y); K(x, y) -> x = y",
        )
        .analyze();
        let d = diags
            .iter()
            .find(|d| d.code == Code::DeadRelation)
            .expect("PDE042");
        assert!(d.message.contains('K'), "{}", d.message);
        assert!(codes(&diags).contains(&"PDE030"), "{:?}", codes(&diags));
    }

    #[test]
    fn populatable_chain_is_not_pde042() {
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> K(x, y); K(x, y) -> x = y",
        )
        .analyze();
        assert!(!codes(&diags).contains(&"PDE042"), "{:?}", codes(&diags));
        assert!(!codes(&diags).contains(&"PDE030"), "{:?}", codes(&diags));
    }

    #[test]
    fn disjunctive_boundary_reports_pde005() {
        let s = pde_relational::parse_schema("source E/2; target H/2; target C/2").unwrap();
        let d = pde_constraints::parser::parse_disjunctive_tgd(&s, "H(x, y) -> E(x, y) | C(x, y)")
            .unwrap();
        let diags = analyze_disjunctive(&s, &[d]);
        assert_eq!(codes(&diags), ["PDE005"]);
        // A single-disjunct tgd is just a tgd: no PDE005.
        let plain =
            pde_constraints::parser::parse_disjunctive_tgd(&s, "H(x, y) -> E(x, y)").unwrap();
        assert!(analyze_disjunctive(&s, &[plain]).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let diags = input(
            "source E/2; target H/2; target K/2",
            "E(x, y) -> H(x, y); E(x, y) -> H(x, y)",
            "K(x, y) -> E(x, y)",
            "H(x, y) -> x = x",
        )
        .analyze();
        let keys: Vec<_> = diags
            .iter()
            .map(|d| (d.constraint.map(|c| (c.group, c.index)), d.code))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by_key(|(c, code)| {
            (
                c.map_or((0, 0), |(g, i)| {
                    (
                        match g {
                            Group::St => 1,
                            Group::Ts => 2,
                            Group::T => 3,
                        },
                        i,
                    )
                }),
                *code,
            )
        });
        assert_eq!(keys, sorted);
    }
}
