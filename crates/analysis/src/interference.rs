//! Static interference graph over a setting's forward dependencies.
//!
//! Nodes are the dependencies the data-exchange chase executes, in solve
//! order (Σst tgds first, then Σt — the same order
//! `solve_data_exchange_governed` builds). Each node gets a read set (its
//! premise positions) and a write set (its conclusion positions); an egd's
//! merges can rewrite values anywhere a labeled null reaches, so an egd
//! conservatively writes *every* position of *every* target relation
//! (nulls never enter source relations: the chased input is ground and
//! forward tgds only insert into the target).
//!
//! An edge `i → j` means firing `i` can create or rewrite facts that `j`
//! reads, so `j` must be scheduled no earlier than `i`. The condensation
//! of this graph is what [`crate::schedule`] layers into strata.

use pde_constraints::{Dependency, Tgd};
use pde_core::setting::PdeSetting;
use pde_relational::{Peer, Position, Schema};
use std::collections::BTreeSet;

/// The relation positions one dependency reads and writes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepFootprint {
    /// Positions matched by the premise.
    pub reads: BTreeSet<Position>,
    /// Positions the dependency can insert into or rewrite.
    pub writes: BTreeSet<Position>,
}

/// One interference edge: `from` writes `position`, which `to` reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterferenceEdge {
    /// The writing dependency.
    pub from: usize,
    /// The reading dependency.
    pub to: usize,
    /// The first overlapping position, as a witness (smallest in
    /// `Position` order).
    pub position: Position,
}

/// The interference graph over a forward dependency list.
#[derive(Clone, Debug, Default)]
pub struct InterferenceGraph {
    /// Per-dependency read/write sets, indexed like the dependency list.
    pub footprints: Vec<DepFootprint>,
    /// All write-read overlaps, ordered by `(from, to)`.
    pub edges: Vec<InterferenceEdge>,
}

impl InterferenceGraph {
    /// Number of dependencies (nodes).
    pub fn node_count(&self) -> usize {
        self.footprints.len()
    }

    /// Successor node indices of `i` (dependencies that read what `i`
    /// writes), in ascending order, including `i` itself for
    /// self-interfering (recursive) dependencies.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().filter(move |e| e.from == i).map(|e| e.to)
    }
}

/// The forward dependency list of `setting` in solve order: Σst tgds
/// wrapped as [`Dependency::Tgd`], then Σt verbatim. This matches the
/// order the data-exchange solver chases, so schedule indices line up
/// with chase `StepRecord::dep_index` values.
pub fn forward_dependencies(setting: &PdeSetting) -> Vec<Dependency> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect()
}

/// Build the interference graph of `setting`'s forward dependencies.
pub fn interference_graph(setting: &PdeSetting) -> InterferenceGraph {
    interference_graph_of(setting.schema(), &forward_dependencies(setting))
}

/// [`interference_graph`] over an explicit dependency list.
pub fn interference_graph_of(schema: &Schema, deps: &[Dependency]) -> InterferenceGraph {
    let footprints: Vec<DepFootprint> = deps.iter().map(|d| footprint(schema, d)).collect();
    let mut edges = Vec::new();
    for (from, w) in footprints.iter().enumerate() {
        for (to, r) in footprints.iter().enumerate() {
            if let Some(&position) = w.writes.intersection(&r.reads).next() {
                edges.push(InterferenceEdge { from, to, position });
            }
        }
    }
    InterferenceGraph { footprints, edges }
}

fn footprint(schema: &Schema, dep: &Dependency) -> DepFootprint {
    let positions_of = |atoms: &[pde_relational::Atom]| {
        atoms
            .iter()
            .flat_map(|a| (0..a.terms.len()).map(move |i| Position::at(a.rel, i)))
            .collect::<BTreeSet<Position>>()
    };
    match dep {
        Dependency::Tgd(Tgd {
            premise,
            conclusion,
            ..
        }) => DepFootprint {
            reads: positions_of(&premise.atoms),
            writes: positions_of(&conclusion.atoms),
        },
        Dependency::Egd(egd) => {
            // A merge substitutes one value for another across the whole
            // instance; any target fact can be rewritten.
            let writes = schema
                .rel_ids()
                .filter(|&r| schema.peer(r) == Peer::Target)
                .flat_map(|r| (0..schema.arity(r) as usize).map(move |i| Position::at(r, i)))
                .collect();
            DepFootprint {
                reads: positions_of(&egd.premise.atoms),
                writes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting(st: &str, t: &str) -> PdeSetting {
        PdeSetting::parse("source E/2; source F/2; target H/2; target G/2;", st, "", t).unwrap()
    }

    #[test]
    fn tgd_footprint_is_premise_and_conclusion() {
        let p = setting("E(x, y) -> H(x, y)", "");
        let g = interference_graph(&p);
        let e = p.schema().rel_id("E").unwrap();
        let h = p.schema().rel_id("H").unwrap();
        assert_eq!(
            g.footprints[0].reads,
            [Position::at(e, 0), Position::at(e, 1)].into()
        );
        assert_eq!(
            g.footprints[0].writes,
            [Position::at(h, 0), Position::at(h, 1)].into()
        );
        assert!(g.edges.is_empty(), "source reads never overlap writes");
    }

    #[test]
    fn egd_writes_every_target_position() {
        let p = setting("E(x, y) -> H(x, y)", "H(x, y), H(x, z) -> y = z");
        let g = interference_graph(&p);
        let h = p.schema().rel_id("H").unwrap();
        let gid = p.schema().rel_id("G").unwrap();
        let egd = &g.footprints[1];
        for pos in [
            Position::at(h, 0),
            Position::at(h, 1),
            Position::at(gid, 0),
            Position::at(gid, 1),
        ] {
            assert!(egd.writes.contains(&pos), "{pos:?}");
        }
        // tgd writes H, egd reads H; egd writes H, so both edge directions
        // plus the egd's self-edge exist.
        let pairs: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1)]);
        assert_eq!(g.edges[0].position, Position::at(h, 0));
    }

    #[test]
    fn independent_tgds_have_no_edges() {
        let p = setting("E(x, y) -> H(x, y); F(x, y) -> G(x, y)", "");
        let g = interference_graph(&p);
        assert_eq!(g.node_count(), 2);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn recursive_tgd_has_a_self_edge() {
        let p = setting("E(x, y) -> H(x, y)", "H(x, y) -> H(y, x)");
        let g = interference_graph(&p);
        let pairs: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1)]);
        assert_eq!(g.successors(1).collect::<Vec<_>>(), vec![1]);
    }
}
