//! A chase-termination hierarchy beyond weak acyclicity.
//!
//! The planner (and `pde terminate`) checks four criteria **cheapest
//! first**, stopping at the first one that certifies termination of the
//! forward chase (Σst ∪ Σt tgds):
//!
//! 1. **weak acyclicity** (paper Def. 5): the position dependency graph
//!    has no cycle through a special edge — the rank witness lives in the
//!    enclosing [`crate::ChaseCertificate`];
//! 2. **joint acyclicity**: the dependency graph over *existential
//!    variables* is acyclic. For each existential `y`, `Move(y)` collects
//!    the positions its nulls can reach (via frontier variables whose
//!    every premise position is already reachable); `y → z` when a
//!    frontier variable of `z`'s tgd has all premise positions in
//!    `Move(y)`. Strictly more settings than weak acyclicity;
//! 3. **super-weak acyclicity**: the same graph, but reachability is
//!    tracked per *place* (premise-atom occurrence) with a unification
//!    filter — a premise variable repeated inside one atom only picks up
//!    a fresh null if a single conclusion atom emits that null at every
//!    repeated attribute. Edges are a subset of the joint-acyclicity
//!    edges, so this certifies strictly more settings again;
//! 4. **critical-instance check** (MFA style): chase the critical
//!    instance (every relation holding one all-`*` tuple) with the
//!    *oblivious* Skolem chase under a hard step/fact limit. Saturation
//!    proves the chase terminates on every instance; the log's fact count
//!    and maximum fact width give a (possibly loose) derived bound.
//!
//! Each certifying criterion produces a machine-checkable witness — the
//! acyclic-graph topological order, or the saturated critical-chase log —
//! plus derived value/fact/step bounds in the Lemma 1 layered-recurrence
//! style. [`verify_termination`] independently replays the criterion
//! trail, validates the witness against the recomputed graph or chase
//! log, and re-derives every bound. See `docs/TERMINATION.md`.

use crate::certificate::{bound_params, evaluate_bound, forward_tgds, json_str, CertificateError};
use pde_constraints::{DependencyGraph, Tgd};
use pde_core::PdeSetting;
use pde_relational::{Position, RelId, Schema, Term, Var};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Version stamp of the termination section; bump on any layout change.
pub const TERMINATION_VERSION: u32 = 1;

/// Step limit for the oblivious critical-instance chase. The critical
/// instance holds one fact per relation, so certifiable settings saturate
/// within a handful of steps; the limit exists to cut off genuinely (or
/// undecidably) divergent inputs quickly — the planner pays this cost on
/// every setting that fails all three acyclicity criteria.
pub const CRITICAL_CHASE_STEP_LIMIT: usize = 256;

/// Fact limit companion of [`CRITICAL_CHASE_STEP_LIMIT`] (an oblivious
/// step inserts at most one conclusion's worth of facts, so this only
/// trips on a runaway engine, mirroring `ChaseLimits::tight`).
const CRITICAL_CHASE_FACT_LIMIT: usize = 16 * CRITICAL_CHASE_STEP_LIMIT + 1024;

/// One criterion of the termination hierarchy, in checking order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationCriterion {
    /// Paper Def. 5 (position dependency graph).
    WeakAcyclicity,
    /// Existential-variable dependency graph acyclicity.
    JointAcyclicity,
    /// Place-based sideways-information-passing acyclicity.
    SuperWeakAcyclicity,
    /// Oblivious chase of the critical instance saturates.
    CriticalInstance,
}

/// All criteria in the (cheapest-first) checking order.
pub const CRITERIA: [TerminationCriterion; 4] = [
    TerminationCriterion::WeakAcyclicity,
    TerminationCriterion::JointAcyclicity,
    TerminationCriterion::SuperWeakAcyclicity,
    TerminationCriterion::CriticalInstance,
];

impl TerminationCriterion {
    /// Stable string form used in the JSON serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            TerminationCriterion::WeakAcyclicity => "weak-acyclicity",
            TerminationCriterion::JointAcyclicity => "joint-acyclicity",
            TerminationCriterion::SuperWeakAcyclicity => "super-weak-acyclicity",
            TerminationCriterion::CriticalInstance => "critical-instance",
        }
    }

    fn from_str(s: &str) -> Option<TerminationCriterion> {
        Some(match s {
            "weak-acyclicity" => TerminationCriterion::WeakAcyclicity,
            "joint-acyclicity" => TerminationCriterion::JointAcyclicity,
            "super-weak-acyclicity" => TerminationCriterion::SuperWeakAcyclicity,
            "critical-instance" => TerminationCriterion::CriticalInstance,
            _ => return None,
        })
    }
}

impl fmt::Display for TerminationCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One entry of the criterion trail: a criterion that was checked and its
/// verdict. The trail covers a prefix of [`CRITERIA`], stopping at the
/// first criterion that holds (or covering all four when none does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriterionCheck {
    /// The checked criterion.
    pub criterion: TerminationCriterion,
    /// Did it certify termination?
    pub holds: bool,
}

/// An existential variable referenced by forward-tgd index and name
/// (stable across processes, unlike interner ids).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExVarRef {
    /// Index into the forward tgd list (Σst followed by the Σt tgds).
    pub tgd_index: usize,
    /// The variable name.
    pub var: String,
}

/// The machine-checkable witness backing a certified criterion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TerminationWitness {
    /// Weak acyclicity: the rank witness lives in the enclosing chase
    /// certificate; nothing extra is recorded here.
    Ranks,
    /// Joint / super-weak acyclicity: a topological order of the
    /// existential-variable dependency graph, plus its longest-path depth
    /// (the layer count the bound recurrence is evaluated at).
    VarOrder {
        /// Every existential variable of the forward tgds, in an order
        /// where all dependency edges point forward.
        order: Vec<ExVarRef>,
        /// Longest path length in the (acyclic) graph.
        max_depth: usize,
    },
    /// Critical-instance check: the saturated oblivious chase log.
    CriticalChase {
        /// Oblivious firings until saturation.
        steps: usize,
        /// Facts in the saturated critical instance.
        facts: usize,
        /// Maximum over facts of the sum of `*`-leaf counts of its
        /// arguments' Skolem terms (the exponent of the derived bound).
        max_fact_width: usize,
        /// The step limit the chase ran under (must equal
        /// [`CRITICAL_CHASE_STEP_LIMIT`]).
        limit: usize,
    },
    /// Every criterion failed; nothing is certified.
    None,
}

/// The termination section of a certificate: criterion trail, witness,
/// and derived bounds. Carried inside [`crate::ChaseCertificate`] and
/// also usable standalone (`pde terminate --emit`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TerminationCertificate {
    /// Schema version of the serialized section.
    pub version: u32,
    /// Active-domain size the concrete bounds were evaluated at.
    pub adom_size: usize,
    /// The weakest (first) certifying criterion, or `None` when the whole
    /// hierarchy fails.
    pub criterion: Option<TerminationCriterion>,
    /// Every criterion checked, in order, with its verdict.
    pub trail: Vec<CriterionCheck>,
    /// The witness backing `criterion`.
    pub witness: TerminationWitness,
    /// Upper bound on distinct values in any chase result (0 when not
    /// certified).
    pub value_bound: usize,
    /// Upper bound on facts in any chase result (0 when not certified).
    pub fact_bound: usize,
    /// Upper bound on the length of any chase sequence (0 when not
    /// certified).
    pub step_bound: usize,
}

impl TerminationCertificate {
    /// Does any criterion certify termination?
    pub fn certified(&self) -> bool {
        self.criterion.is_some()
    }
}

// ---------------------------------------------------------------------------
// Analysis (the planner side).
// ---------------------------------------------------------------------------

/// Run the hierarchy cheapest-first over the forward tgds of `setting`,
/// with concrete bounds evaluated at an active domain of `adom_size`.
pub fn analyze_termination(setting: &PdeSetting, adom_size: usize) -> TerminationCertificate {
    let schema = setting.schema();
    let forward = forward_tgds(setting);
    analyze_tgds(schema, &forward, adom_size)
}

/// [`analyze_termination`] over an explicit forward tgd list (the lint
/// pass reuses this without rebuilding a setting).
pub(crate) fn analyze_tgds(
    schema: &Schema,
    forward: &[Tgd],
    adom_size: usize,
) -> TerminationCertificate {
    let params = bound_params(schema, forward);
    let mut trail = Vec::new();
    fn close(
        adom_size: usize,
        trail: Vec<CriterionCheck>,
        criterion: Option<TerminationCriterion>,
        witness: TerminationWitness,
        bounds: (usize, usize, usize),
    ) -> TerminationCertificate {
        TerminationCertificate {
            version: TERMINATION_VERSION,
            adom_size,
            criterion,
            trail,
            witness,
            value_bound: bounds.0,
            fact_bound: bounds.1,
            step_bound: bounds.2,
        }
    }

    // 1. Weak acyclicity (Def. 5).
    let graph = DependencyGraph::new(schema, forward);
    if let Some(max_rank) = graph.max_rank() {
        trail.push(CriterionCheck {
            criterion: TerminationCriterion::WeakAcyclicity,
            holds: true,
        });
        let bounds = evaluate_bound(schema, params, max_rank, adom_size);
        return close(
            adom_size,
            trail,
            Some(TerminationCriterion::WeakAcyclicity),
            TerminationWitness::Ranks,
            bounds,
        );
    }
    trail.push(CriterionCheck {
        criterion: TerminationCriterion::WeakAcyclicity,
        holds: false,
    });

    // 2. / 3. The existential-variable graphs.
    for (criterion, mode) in [
        (TerminationCriterion::JointAcyclicity, GraphMode::Positions),
        (TerminationCriterion::SuperWeakAcyclicity, GraphMode::Places),
    ] {
        let g = ExVarGraph::build(forward, mode);
        if let Some((order, max_depth)) = g.topological_order() {
            trail.push(CriterionCheck {
                criterion,
                holds: true,
            });
            let bounds = evaluate_bound(schema, params, max_depth, adom_size);
            return close(
                adom_size,
                trail,
                Some(criterion),
                TerminationWitness::VarOrder { order, max_depth },
                bounds,
            );
        }
        trail.push(CriterionCheck {
            criterion,
            holds: false,
        });
    }

    // 4. Critical-instance check.
    match critical_chase(schema, forward, CRITICAL_CHASE_STEP_LIMIT) {
        Some(log) => {
            trail.push(CriterionCheck {
                criterion: TerminationCriterion::CriticalInstance,
                holds: true,
            });
            let bounds = critical_bounds(schema, &log, adom_size);
            close(
                adom_size,
                trail,
                Some(TerminationCriterion::CriticalInstance),
                TerminationWitness::CriticalChase {
                    steps: log.steps,
                    facts: log.facts,
                    max_fact_width: log.max_fact_width,
                    limit: CRITICAL_CHASE_STEP_LIMIT,
                },
                bounds,
            )
        }
        None => {
            trail.push(CriterionCheck {
                criterion: TerminationCriterion::CriticalInstance,
                holds: false,
            });
            close(adom_size, trail, None, TerminationWitness::None, (0, 0, 0))
        }
    }
}

/// Bounds derived from a saturated critical-instance chase: every fact of
/// the (Skolem) chase of an instance with `adom_size` constants maps, by
/// collapsing constants to `*`, onto a critical-chase fact, whose fiber
/// has at most `adom^width` instantiations of its `*` leaves. These are
/// deliberately loose (see PDE051): finite, not tight.
fn critical_bounds(schema: &Schema, log: &CritLog, adom_size: usize) -> (usize, usize, usize) {
    let n = adom_size.max(1);
    let (_, _, _, max_arity) = bound_params(schema, &[]);
    let fact_bound = log
        .facts
        .saturating_mul(n.saturating_pow(u32::try_from(log.max_fact_width).unwrap_or(u32::MAX)));
    let value_bound = fact_bound.saturating_mul(max_arity.max(1)).max(n);
    let step_bound = fact_bound.saturating_add(value_bound);
    (value_bound, fact_bound, step_bound)
}

// ---------------------------------------------------------------------------
// Existential-variable dependency graphs (joint / super-weak acyclicity).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum GraphMode {
    /// Joint acyclicity: null reachability tracked per schema position.
    Positions,
    /// Super-weak acyclicity: tracked per premise place, with the
    /// repeated-variable unification filter on the fresh-null emission.
    Places,
}

/// The existential-variable dependency graph of a forward tgd list.
pub(crate) struct ExVarGraph {
    /// Nodes, sorted by (tgd index, variable name).
    nodes: Vec<ExVarRef>,
    /// Edges as node-index pairs, deduplicated and sorted.
    edges: Vec<(usize, usize)>,
}

impl ExVarGraph {
    pub(crate) fn build(forward: &[Tgd], mode: GraphMode) -> ExVarGraph {
        let mut nodes = Vec::new();
        let mut node_vars: Vec<(usize, Var)> = Vec::new();
        for (i, t) in forward.iter().enumerate() {
            let mut vars: Vec<Var> = t.existentials.iter().copied().collect();
            vars.sort_by_key(ToString::to_string);
            for v in vars {
                nodes.push(ExVarRef {
                    tgd_index: i,
                    var: v.to_string(),
                });
                node_vars.push((i, v));
            }
        }
        let mut edges = BTreeSet::new();
        for (from, (ti, y)) in node_vars.iter().enumerate() {
            // Which tgds can consume a null born from (ti, y)?
            let consumers: BTreeSet<usize> = match mode {
                GraphMode::Positions => consumers_by_positions(forward, *ti, *y),
                GraphMode::Places => consumers_by_places(forward, *ti, *y),
            };
            for (to, (tj, _)) in node_vars.iter().enumerate() {
                if consumers.contains(tj) {
                    edges.insert((from, to));
                }
            }
        }
        ExVarGraph {
            nodes,
            edges: edges.into_iter().collect(),
        }
    }

    /// A topological order plus the longest-path depth, or `None` when the
    /// graph has a cycle. Deterministic: Kahn's algorithm always picks the
    /// smallest ready node index.
    pub(crate) fn topological_order(&self) -> Option<(Vec<ExVarRef>, usize)> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for &(_, to) in &self.edges {
            indeg[to] += 1;
        }
        let mut depth = vec![0usize; n];
        let mut order = Vec::with_capacity(n);
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            order.push(i);
            for &(from, to) in &self.edges {
                if from == i {
                    depth[to] = depth[to].max(depth[i] + 1);
                    indeg[to] -= 1;
                    if indeg[to] == 0 {
                        ready.insert(to);
                    }
                }
            }
        }
        if order.len() != n {
            return None;
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        Some((
            order.into_iter().map(|i| self.nodes[i].clone()).collect(),
            max_depth,
        ))
    }

    /// Does the claimed order list exactly this graph's nodes with every
    /// edge pointing forward?
    pub(crate) fn validates_order(&self, order: &[ExVarRef]) -> Result<(), String> {
        if order.len() != self.nodes.len() {
            return Err(format!(
                "order lists {} variable(s), the graph has {}",
                order.len(),
                self.nodes.len()
            ));
        }
        let mut position: BTreeMap<&ExVarRef, usize> = BTreeMap::new();
        for (i, v) in order.iter().enumerate() {
            if position.insert(v, i).is_some() {
                return Err(format!("duplicate order entry {}:{}", v.tgd_index, v.var));
            }
        }
        for v in &self.nodes {
            if !position.contains_key(v) {
                return Err(format!(
                    "graph node {}:{} missing from order",
                    v.tgd_index, v.var
                ));
            }
        }
        for &(from, to) in &self.edges {
            let (f, t) = (&self.nodes[from], &self.nodes[to]);
            if position[f] >= position[t] {
                return Err(format!(
                    "edge {}:{} -> {}:{} points backwards in the claimed order",
                    f.tgd_index, f.var, t.tgd_index, t.var
                ));
            }
        }
        Ok(())
    }

    /// Longest-path depth (graph must be acyclic).
    pub(crate) fn max_depth(&self) -> Option<usize> {
        self.topological_order().map(|(_, d)| d)
    }
}

/// Premise positions of `v` in `t`.
pub(crate) fn premise_positions(t: &Tgd, v: Var) -> BTreeSet<Position> {
    let mut out = BTreeSet::new();
    for atom in &t.premise.atoms {
        for (i, term) in atom.terms.iter().enumerate() {
            if *term == Term::Var(v) {
                out.insert(Position::at(atom.rel, i));
            }
        }
    }
    out
}

/// Conclusion positions of `v` in `t`.
pub(crate) fn conclusion_positions(t: &Tgd, v: Var) -> BTreeSet<Position> {
    let mut out = BTreeSet::new();
    for atom in &t.conclusion.atoms {
        for (i, term) in atom.terms.iter().enumerate() {
            if *term == Term::Var(v) {
                out.insert(Position::at(atom.rel, i));
            }
        }
    }
    out
}

/// Joint acyclicity: compute `Move(y)` over positions, then return the
/// indices of tgds with a frontier variable whose every premise position
/// lies in `Move(y)` — the tgds whose null creation can consume `y`'s
/// nulls.
fn consumers_by_positions(forward: &[Tgd], ti: usize, y: Var) -> BTreeSet<usize> {
    let mut mv = conclusion_positions(&forward[ti], y);
    loop {
        let mut changed = false;
        for t in forward {
            for x in t.frontier() {
                let body = premise_positions(t, x);
                if !body.is_empty() && body.iter().all(|p| mv.contains(p)) {
                    for q in conclusion_positions(t, x) {
                        changed |= mv.insert(q);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    forward
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.existentials.is_empty())
        .filter(|(_, t)| {
            t.frontier().iter().any(|x| {
                let body = premise_positions(t, *x);
                !body.is_empty() && body.iter().all(|p| mv.contains(p))
            })
        })
        .map(|(j, _)| j)
        .collect()
}

/// Super-weak acyclicity: track the set of *variables* that can bind a
/// null born from `(ti, y)`. A premise variable `w` of tgd `j` is tainted
/// when every premise atom containing `w` can be matched by an emitted
/// fact carrying the null at all of `w`'s attributes **simultaneously** —
/// for the fresh-null emission that requires a single conclusion atom
/// with `y` at all those attributes (two distinct fresh nulls are never
/// equal), while propagated emissions conservatively pool every tainted
/// variable of the atom. Returns the tgds with a tainted frontier
/// variable.
fn consumers_by_places(forward: &[Tgd], ti: usize, y: Var) -> BTreeSet<usize> {
    let mut tainted: BTreeSet<(usize, Var)> = BTreeSet::new();
    loop {
        // Emission profiles: (relation, attributes that can hold the null
        // within one fact).
        let mut emissions: Vec<(RelId, BTreeSet<usize>)> = Vec::new();
        for (j, t) in forward.iter().enumerate() {
            for atom in &t.conclusion.atoms {
                let mut attrs = BTreeSet::new();
                for (i, term) in atom.terms.iter().enumerate() {
                    let Term::Var(w) = term else { continue };
                    if j == ti && *w == y {
                        attrs.insert(i);
                    }
                    if !t.existentials.contains(w) && tainted.contains(&(j, *w)) {
                        attrs.insert(i);
                    }
                }
                if !attrs.is_empty() {
                    emissions.push((atom.rel, attrs));
                }
            }
        }
        let can_hold = |rel: RelId, attrs: &BTreeSet<usize>| {
            emissions
                .iter()
                .any(|(r, s)| *r == rel && attrs.is_subset(s))
        };
        let mut changed = false;
        for (j, t) in forward.iter().enumerate() {
            for w in t.premise.variables() {
                if tainted.contains(&(j, w)) {
                    continue;
                }
                let reachable = t.premise.atoms.iter().all(|atom| {
                    let attrs: BTreeSet<usize> = atom
                        .terms
                        .iter()
                        .enumerate()
                        .filter(|(_, term)| **term == Term::Var(w))
                        .map(|(i, _)| i)
                        .collect();
                    attrs.is_empty() || can_hold(atom.rel, &attrs)
                });
                if reachable {
                    tainted.insert((j, w));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    forward
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.existentials.is_empty())
        .filter(|(j, t)| t.frontier().iter().any(|x| tainted.contains(&(*j, *x))))
        .map(|(j, _)| j)
        .collect()
}

// ---------------------------------------------------------------------------
// The oblivious critical-instance chase.
// ---------------------------------------------------------------------------

/// The log of a *saturated* critical-instance chase.
pub(crate) struct CritLog {
    /// Oblivious firings until saturation.
    pub(crate) steps: usize,
    /// Facts in the saturated instance.
    pub(crate) facts: usize,
    /// Maximum fact width (sum of `*`-leaf counts of the arguments).
    pub(crate) max_fact_width: usize,
}

/// Oblivious (Skolem) chase of the critical instance: every relation
/// seeded with one all-`*` tuple, every `(tgd, frontier binding)` fired
/// exactly once regardless of satisfaction. `Some(log)` on saturation
/// within `max_steps`; `None` on divergence past the limit, a blown fact
/// cap, or tgds with constants (the all-`*` seed does not cover those).
pub(crate) fn critical_chase(
    schema: &Schema,
    forward: &[Tgd],
    max_steps: usize,
) -> Option<CritLog> {
    if forward.iter().any(Tgd::has_constants) {
        return None;
    }
    // Value table: id -> width (number of `*` leaves of its Skolem term).
    // Value 0 is `*` itself.
    let mut widths: Vec<usize> = vec![1];
    let mut rows: Vec<Vec<Vec<usize>>> = vec![Vec::new(); schema.len()];
    let mut seen: BTreeSet<(usize, Vec<usize>)> = BTreeSet::new();
    let mut facts = 0usize;
    let mut max_fact_width = 0usize;
    for r in schema.rel_ids() {
        let tuple = vec![0usize; usize::from(schema.arity(r))];
        if seen.insert((r.index(), tuple.clone())) {
            max_fact_width = max_fact_width.max(tuple.len());
            rows[r.index()].push(tuple);
            facts += 1;
        }
    }
    // Sorted variable orders per tgd, fixed up front.
    let frontiers: Vec<Vec<Var>> = forward.iter().map(|t| sorted_vars(&t.frontier())).collect();
    let existentials: Vec<Vec<Var>> = forward
        .iter()
        .map(|t| sorted_vars(&t.existentials))
        .collect();
    let mut fired: BTreeSet<(usize, Vec<usize>)> = BTreeSet::new();
    let mut steps = 0usize;
    loop {
        // Collect the unfired frontier bindings against the current facts.
        let mut pending: BTreeSet<(usize, Vec<usize>)> = BTreeSet::new();
        for (ti, t) in forward.iter().enumerate() {
            let mut binding: BTreeMap<Var, usize> = BTreeMap::new();
            enumerate_matches(&t.premise.atoms, 0, &rows, &mut binding, &mut |b| {
                let key: Vec<usize> = frontiers[ti].iter().map(|v| b[v]).collect();
                if !fired.contains(&(ti, key.clone())) {
                    pending.insert((ti, key));
                }
            });
        }
        if pending.is_empty() {
            return Some(CritLog {
                steps,
                facts,
                max_fact_width,
            });
        }
        for (ti, key) in pending {
            steps += 1;
            if steps > max_steps {
                return None;
            }
            let t = &forward[ti];
            let mut assign: BTreeMap<Var, usize> = frontiers[ti]
                .iter()
                .copied()
                .zip(key.iter().copied())
                .collect();
            let born_width: usize = key.iter().map(|&v| widths[v]).sum();
            for &e in &existentials[ti] {
                widths.push(born_width);
                assign.insert(e, widths.len() - 1);
            }
            fired.insert((ti, key));
            for atom in &t.conclusion.atoms {
                let tuple: Vec<usize> = atom
                    .terms
                    .iter()
                    .map(|term| match term {
                        Term::Var(v) => assign[v],
                        Term::Const(_) => unreachable!("guarded by has_constants"),
                    })
                    .collect();
                if seen.insert((atom.rel.index(), tuple.clone())) {
                    let width = tuple
                        .iter()
                        .map(|&v| widths[v])
                        .fold(0usize, usize::saturating_add);
                    max_fact_width = max_fact_width.max(width);
                    rows[atom.rel.index()].push(tuple);
                    facts += 1;
                    if facts > CRITICAL_CHASE_FACT_LIMIT {
                        return None;
                    }
                }
            }
        }
    }
}

fn sorted_vars(vars: &BTreeSet<Var>) -> Vec<Var> {
    let mut out: Vec<Var> = vars.iter().copied().collect();
    out.sort_by_key(ToString::to_string);
    out
}

/// Backtracking premise matcher over the critical-instance fact table.
fn enumerate_matches(
    atoms: &[pde_relational::Atom],
    at: usize,
    rows: &[Vec<Vec<usize>>],
    binding: &mut BTreeMap<Var, usize>,
    found: &mut impl FnMut(&BTreeMap<Var, usize>),
) {
    let Some(atom) = atoms.get(at) else {
        found(binding);
        return;
    };
    'facts: for tuple in &rows[atom.rel.index()] {
        let mut bound_here: Vec<Var> = Vec::new();
        for (term, &val) in atom.terms.iter().zip(tuple.iter()) {
            let Term::Var(v) = term else { continue };
            match binding.get(v) {
                Some(&b) if b == val => {}
                Some(_) => {
                    for v in bound_here.drain(..) {
                        binding.remove(&v);
                    }
                    continue 'facts;
                }
                None => {
                    binding.insert(*v, val);
                    bound_here.push(*v);
                }
            }
        }
        enumerate_matches(atoms, at + 1, rows, binding, found);
        for v in bound_here {
            binding.remove(&v);
        }
    }
}

// ---------------------------------------------------------------------------
// The independent checker.
// ---------------------------------------------------------------------------

/// Re-validate a termination section against `setting` without trusting
/// the planner: replay the criterion trail, validate the witness against
/// the recomputed graph or chase log, and re-derive every bound.
pub fn verify_termination(
    setting: &PdeSetting,
    tc: &TerminationCertificate,
) -> Result<(), CertificateError> {
    let schema = setting.schema();
    let forward = forward_tgds(setting);
    verify_tgds(schema, &forward, tc)
}

pub(crate) fn verify_tgds(
    schema: &Schema,
    forward: &[Tgd],
    tc: &TerminationCertificate,
) -> Result<(), CertificateError> {
    let fail = |m: String| Err(CertificateError::Termination(m));
    if tc.version != TERMINATION_VERSION {
        return fail(format!(
            "termination section version {} unsupported (expected {TERMINATION_VERSION})",
            tc.version
        ));
    }

    // Replay the trail, criterion by criterion, in hierarchy order.
    let mut derived_trail = Vec::new();
    let mut derived_criterion = None;
    for criterion in CRITERIA {
        let holds = match criterion {
            TerminationCriterion::WeakAcyclicity => {
                DependencyGraph::new(schema, forward).is_weakly_acyclic()
            }
            TerminationCriterion::JointAcyclicity => {
                ExVarGraph::build(forward, GraphMode::Positions)
                    .topological_order()
                    .is_some()
            }
            TerminationCriterion::SuperWeakAcyclicity => {
                ExVarGraph::build(forward, GraphMode::Places)
                    .topological_order()
                    .is_some()
            }
            TerminationCriterion::CriticalInstance => {
                critical_chase(schema, forward, CRITICAL_CHASE_STEP_LIMIT).is_some()
            }
        };
        derived_trail.push(CriterionCheck { criterion, holds });
        if holds {
            derived_criterion = Some(criterion);
            break;
        }
    }
    if tc.trail != derived_trail {
        return fail(format!(
            "criterion trail {:?} does not replay (derived {:?})",
            tc.trail, derived_trail
        ));
    }
    if tc.criterion != derived_criterion {
        return fail(format!(
            "claimed criterion {:?}, derived {:?}",
            tc.criterion.map(TerminationCriterion::as_str),
            derived_criterion.map(TerminationCriterion::as_str)
        ));
    }

    // Witness shape and content per criterion.
    let params = bound_params(schema, forward);
    let derived_bounds = match derived_criterion {
        Some(TerminationCriterion::WeakAcyclicity) => {
            if tc.witness != TerminationWitness::Ranks {
                return fail("weak-acyclicity certificate must carry the rank witness".into());
            }
            let max_rank = DependencyGraph::new(schema, forward)
                .max_rank()
                .unwrap_or(0);
            evaluate_bound(schema, params, max_rank, tc.adom_size)
        }
        Some(
            c @ (TerminationCriterion::JointAcyclicity | TerminationCriterion::SuperWeakAcyclicity),
        ) => {
            let TerminationWitness::VarOrder { order, max_depth } = &tc.witness else {
                return fail(format!("criterion {c} needs a variable-order witness"));
            };
            let mode = if c == TerminationCriterion::JointAcyclicity {
                GraphMode::Positions
            } else {
                GraphMode::Places
            };
            let graph = ExVarGraph::build(forward, mode);
            graph
                .validates_order(order)
                .map_err(CertificateError::Termination)?;
            let depth = graph.max_depth().unwrap_or(0);
            if *max_depth != depth {
                return fail(format!(
                    "claimed graph depth {max_depth}, recomputed {depth}"
                ));
            }
            evaluate_bound(schema, params, depth, tc.adom_size)
        }
        Some(TerminationCriterion::CriticalInstance) => {
            let TerminationWitness::CriticalChase {
                steps,
                facts,
                max_fact_width,
                limit,
            } = &tc.witness
            else {
                return fail("critical-instance certificate needs a chase-log witness".into());
            };
            if *limit != CRITICAL_CHASE_STEP_LIMIT {
                return fail(format!(
                    "witness ran under step limit {limit}, the spec limit is {CRITICAL_CHASE_STEP_LIMIT}"
                ));
            }
            let log = critical_chase(schema, forward, CRITICAL_CHASE_STEP_LIMIT)
                .expect("trail replay certified the critical instance");
            if (*steps, *facts, *max_fact_width) != (log.steps, log.facts, log.max_fact_width) {
                return fail(format!(
                    "claimed chase log (steps {steps}, facts {facts}, width {max_fact_width}), \
                     replay gives ({}, {}, {})",
                    log.steps, log.facts, log.max_fact_width
                ));
            }
            critical_bounds(schema, &log, tc.adom_size)
        }
        None => {
            if tc.witness != TerminationWitness::None {
                return fail("uncertified section must not carry a witness".into());
            }
            (0, 0, 0)
        }
    };
    if (tc.value_bound, tc.fact_bound, tc.step_bound) != derived_bounds {
        return fail(format!(
            "claimed (value, fact, step) bounds ({}, {}, {}), derived ({}, {}, {})",
            tc.value_bound,
            tc.fact_bound,
            tc.step_bound,
            derived_bounds.0,
            derived_bounds.1,
            derived_bounds.2
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Serialization and rendering.
// ---------------------------------------------------------------------------

impl TerminationCertificate {
    /// Serialize as the versioned JSON section of `docs/TERMINATION.md`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"v\":{}", self.version));
        out.push_str(&format!(",\"adom_size\":{}", self.adom_size));
        match self.criterion {
            Some(c) => out.push_str(&format!(",\"criterion\":{}", json_str(c.as_str()))),
            None => out.push_str(",\"criterion\":null"),
        }
        out.push_str(",\"trail\":[");
        for (i, c) in self.trail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"criterion\":{},\"holds\":{}}}",
                json_str(c.criterion.as_str()),
                c.holds
            ));
        }
        out.push_str(&format!(
            "],\"value_bound\":{},\"fact_bound\":{},\"step_bound\":{}",
            self.value_bound, self.fact_bound, self.step_bound
        ));
        out.push_str(",\"witness\":");
        match &self.witness {
            TerminationWitness::Ranks => out.push_str("{\"kind\":\"ranks\"}"),
            TerminationWitness::VarOrder { order, max_depth } => {
                out.push_str(&format!(
                    "{{\"kind\":\"variable-order\",\"max_depth\":{max_depth},\"order\":["
                ));
                for (i, v) in order.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"tgd\":{},\"var\":{}}}",
                        v.tgd_index,
                        json_str(&v.var)
                    ));
                }
                out.push_str("]}");
            }
            TerminationWitness::CriticalChase {
                steps,
                facts,
                max_fact_width,
                limit,
            } => out.push_str(&format!(
                "{{\"kind\":\"critical-chase\",\"steps\":{steps},\"facts\":{facts},\
                 \"max_fact_width\":{max_fact_width},\"limit\":{limit}}}"
            )),
            TerminationWitness::None => out.push_str("{\"kind\":\"none\"}"),
        }
        out.push('}');
        out
    }

    /// Parse the JSON section back (shape only; semantic validity is the
    /// job of [`verify_termination`]).
    pub fn from_json(src: &str) -> Result<TerminationCertificate, CertificateError> {
        let v = crate::certificate::json::parse(src).map_err(CertificateError::Malformed)?;
        Self::from_json_value(&v)
    }

    pub(crate) fn from_json_value(
        v: &crate::certificate::json::Json,
    ) -> Result<TerminationCertificate, CertificateError> {
        use crate::certificate::json::{Json, ObjExt};
        let top = v.as_obj("termination")?;
        let version = u32::try_from(top.get_num("v")?)
            .map_err(|_| CertificateError::Malformed("termination version out of range".into()))?;
        let adom_size = top.get_num("adom_size")?;
        let criterion = match top.field_of("criterion")? {
            Json::Null => None,
            Json::Str(s) => Some(TerminationCriterion::from_str(s).ok_or_else(|| {
                CertificateError::Malformed(format!("unknown termination criterion '{s}'"))
            })?),
            _ => {
                return Err(CertificateError::Malformed(
                    "criterion must be a string or null".into(),
                ))
            }
        };
        let mut trail = Vec::new();
        for item in v.get_arr("trail")? {
            let o = item.as_obj("trail[]")?;
            let c = o.get_str("criterion")?;
            trail.push(CriterionCheck {
                criterion: TerminationCriterion::from_str(&c).ok_or_else(|| {
                    CertificateError::Malformed(format!("unknown trail criterion '{c}'"))
                })?,
                holds: o.get_bool("holds")?,
            });
        }
        let wv = top.field_of("witness")?;
        let wo = wv.as_obj("witness")?;
        let witness = match wo.get_str("kind")?.as_str() {
            "ranks" => TerminationWitness::Ranks,
            "variable-order" => {
                let mut order = Vec::new();
                for item in wv.get_arr("order")? {
                    let o = item.as_obj("order[]")?;
                    order.push(ExVarRef {
                        tgd_index: o.get_num("tgd")?,
                        var: o.get_str("var")?,
                    });
                }
                TerminationWitness::VarOrder {
                    order,
                    max_depth: wo.get_num("max_depth")?,
                }
            }
            "critical-chase" => TerminationWitness::CriticalChase {
                steps: wo.get_num("steps")?,
                facts: wo.get_num("facts")?,
                max_fact_width: wo.get_num("max_fact_width")?,
                limit: wo.get_num("limit")?,
            },
            "none" => TerminationWitness::None,
            other => {
                return Err(CertificateError::Malformed(format!(
                    "unknown witness kind '{other}'"
                )))
            }
        };
        Ok(TerminationCertificate {
            version,
            adom_size,
            criterion,
            trail,
            witness,
            value_bound: top.get_num("value_bound")?,
            fact_bound: top.get_num("fact_bound")?,
            step_bound: top.get_num("step_bound")?,
        })
    }
}

/// Human-readable rendering (the `pde terminate` text format; also
/// embedded in `pde plan`'s output).
pub fn render_termination_text(tc: &TerminationCertificate) -> String {
    let mut out = String::new();
    match tc.criterion {
        Some(c) => out.push_str(&format!("termination: certified by {c}\n")),
        None => out.push_str("termination: UNDETERMINED (every criterion failed)\n"),
    }
    let trail: Vec<String> = tc
        .trail
        .iter()
        .map(|c| format!("{} {}", c.criterion, if c.holds { "yes" } else { "no" }))
        .collect();
    out.push_str(&format!("  trail: {}\n", trail.join("; ")));
    match &tc.witness {
        TerminationWitness::Ranks => {
            out.push_str("  witness: position ranks (see the chase certificate)\n");
        }
        TerminationWitness::VarOrder { order, max_depth } => {
            let vars: Vec<String> = order
                .iter()
                .map(|v| format!("{}@tgd{}", v.var, v.tgd_index))
                .collect();
            out.push_str(&format!(
                "  witness: existential-variable order {} (depth {max_depth})\n",
                vars.join(" < ")
            ));
        }
        TerminationWitness::CriticalChase {
            steps,
            facts,
            max_fact_width,
            limit,
        } => {
            out.push_str(&format!(
                "  witness: critical instance saturated in {steps} step(s), {facts} fact(s), \
                 max width {max_fact_width} (limit {limit})\n"
            ));
        }
        TerminationWitness::None => {}
    }
    if tc.certified() {
        out.push_str(&format!(
            "  bound at |adom| = {}: values {}, facts {}, steps {}\n",
            tc.adom_size, tc.value_bound, tc.fact_bound, tc.step_bound
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting(schema: &str, st: &str, ts: &str, t: &str) -> PdeSetting {
        PdeSetting::parse(schema, st, ts, t).unwrap()
    }

    /// Weakly acyclic: the hierarchy stops at criterion 1.
    fn wa_setting() -> PdeSetting {
        setting(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
    }

    /// Not weakly acyclic (A.0 -special-> C.1 -> A.0), but jointly
    /// acyclic: the C-null can never reach B, and the creating tgd needs
    /// its frontier in both A and B.
    fn ja_setting() -> PdeSetting {
        setting(
            "source SA/1; source SB/1; target A/1; target B/1; target C/2;",
            "SA(x) -> A(x); SB(x) -> B(x)",
            "B(x) -> SB(x)",
            "A(x), B(x) -> exists z . C(x, z); C(x, y) -> A(y)",
        )
    }

    /// Fails joint acyclicity (position-wise the null reaches both R.0
    /// and R.1), but super-weakly acyclic: no single conclusion atom puts
    /// the fresh null at both attributes of the repeated-variable premise
    /// R(w, w).
    fn swa_setting() -> PdeSetting {
        setting(
            "source S/1; target A/1; target R/2;",
            "S(x) -> A(x)",
            "A(x) -> S(x)",
            "A(x) -> exists z . R(x, z), R(z, x); R(w, w) -> A(w)",
        )
    }

    /// Fails every acyclicity criterion — the swap rule makes the taint
    /// analysis pool the null onto both attributes of one R-fact, so the
    /// diagonal consumer looks reachable — but the critical instance
    /// saturates: the chase only ever produces *mixed* facts R(*, n) and
    /// R(n, *), never a null on the diagonal, so no null reaches A.
    fn mfa_setting() -> PdeSetting {
        setting(
            "source S/1; target A/1; target R/2;",
            "S(x) -> A(x)",
            "A(x) -> S(x)",
            "A(x) -> exists y . R(x, y); R(x, y) -> R(y, x); R(w, w) -> A(w)",
        )
    }

    /// Genuinely divergent: every criterion fails.
    fn divergent_setting() -> PdeSetting {
        setting(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "H(x, y) -> exists z . H(y, z)",
        )
    }

    #[test]
    fn hierarchy_is_checked_cheapest_first() {
        let cases = [
            (wa_setting(), Some(TerminationCriterion::WeakAcyclicity), 1),
            (ja_setting(), Some(TerminationCriterion::JointAcyclicity), 2),
            (
                swa_setting(),
                Some(TerminationCriterion::SuperWeakAcyclicity),
                3,
            ),
            (
                mfa_setting(),
                Some(TerminationCriterion::CriticalInstance),
                4,
            ),
        ];
        for (s, expected, trail_len) in cases {
            let tc = analyze_termination(&s, 3);
            assert_eq!(tc.criterion, expected);
            assert_eq!(tc.trail.len(), trail_len);
            assert_eq!(tc.certified(), expected.is_some());
            assert!(tc.fact_bound > 0, "certified sections carry a bound");
            verify_termination(&s, &tc).expect("analysis output must verify");
        }
    }

    /// The divergent setting exercises the full critical-chase step limit
    /// twice per analysis (analyze + verify), which is far too slow under
    /// Miri; the cheap limit-respecting test below keeps the chase loop
    /// covered there.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn divergent_setting_fails_every_criterion() {
        let s = divergent_setting();
        let tc = analyze_termination(&s, 3);
        assert_eq!(tc.criterion, None);
        assert_eq!(tc.trail.len(), 4);
        assert!(tc.trail.iter().all(|c| !c.holds));
        assert_eq!((tc.value_bound, tc.fact_bound, tc.step_bound), (0, 0, 0));
        verify_termination(&s, &tc).expect("the uncertified section still verifies");
        let back = TerminationCertificate::from_json(&tc.to_json()).unwrap();
        assert_eq!(back, tc);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        for s in [wa_setting(), ja_setting(), swa_setting(), mfa_setting()] {
            let tc = analyze_termination(&s, 4);
            let back = TerminationCertificate::from_json(&tc.to_json()).unwrap();
            assert_eq!(back, tc);
            verify_termination(&s, &back).unwrap();
        }
    }

    #[test]
    fn tampered_trail_is_rejected() {
        let s = ja_setting();
        let mut tc = analyze_termination(&s, 3);
        tc.trail[0].holds = true;
        assert!(matches!(
            verify_termination(&s, &tc),
            Err(CertificateError::Termination(_))
        ));
    }

    #[test]
    fn tampered_order_is_rejected() {
        let s = ja_setting();
        let mut tc = analyze_termination(&s, 3);
        let TerminationWitness::VarOrder { order, .. } = &mut tc.witness else {
            panic!("joint acyclicity carries a variable order");
        };
        order.clear();
        assert!(matches!(
            verify_termination(&s, &tc),
            Err(CertificateError::Termination(_))
        ));
    }

    #[test]
    fn tampered_chase_log_is_rejected() {
        let s = mfa_setting();
        let mut tc = analyze_termination(&s, 3);
        let TerminationWitness::CriticalChase { facts, .. } = &mut tc.witness else {
            panic!("critical-instance check carries a chase log");
        };
        *facts += 1;
        assert!(matches!(
            verify_termination(&s, &tc),
            Err(CertificateError::Termination(_))
        ));
    }

    #[test]
    fn tampered_bound_is_rejected() {
        let s = swa_setting();
        let mut tc = analyze_termination(&s, 3);
        tc.fact_bound += 1;
        assert!(matches!(
            verify_termination(&s, &tc),
            Err(CertificateError::Termination(_))
        ));
    }

    #[test]
    fn forged_certification_of_a_divergent_setting_is_rejected() {
        let s = divergent_setting();
        let forged = analyze_termination(&ja_setting(), 3);
        assert!(verify_termination(&s, &forged).is_err());
    }

    #[test]
    fn critical_chase_respects_its_step_limit() {
        let s = divergent_setting();
        let forward = forward_tgds(&s);
        assert!(critical_chase(s.schema(), &forward, 16).is_none());
    }

    #[test]
    fn critical_chase_saturates_on_the_mfa_setting() {
        let s = mfa_setting();
        let forward = forward_tgds(&s);
        let log = critical_chase(s.schema(), &forward, 64).expect("saturates");
        assert!(log.steps <= 8, "tiny instance, tiny log: {}", log.steps);
        assert!(log.facts >= s.schema().len());
    }

    #[test]
    fn swa_edges_are_a_subset_of_ja_edges() {
        for s in [
            ja_setting(),
            swa_setting(),
            mfa_setting(),
            divergent_setting(),
        ] {
            let forward = forward_tgds(&s);
            let ja = ExVarGraph::build(&forward, GraphMode::Positions);
            let swa = ExVarGraph::build(&forward, GraphMode::Places);
            assert_eq!(ja.nodes, swa.nodes);
            let ja_edges: BTreeSet<_> = ja.edges.iter().collect();
            for e in &swa.edges {
                assert!(ja_edges.contains(e), "SWA edge {e:?} missing from JA");
            }
        }
    }

    #[test]
    fn rendering_names_the_criterion() {
        let tc = analyze_termination(&ja_setting(), 3);
        let text = render_termination_text(&tc);
        assert!(text.contains("certified by joint-acyclicity"));
        assert!(text.contains("weak-acyclicity no"));
        let tc = analyze_termination(&divergent_setting(), 3);
        assert!(render_termination_text(&tc).contains("UNDETERMINED"));
    }
}
