//! Static complexity certificates and their independent checker.
//!
//! A [`Certificate`] is the output of the planner ([`crate::plan`]): a
//! machine-checkable record of *why* a PDE setting sits where it does on
//! the paper's complexity map, together with concrete solver budgets
//! derived from Lemma 1's chase bound. Everything in it is re-derivable
//! from the setting alone; the certificate's value is that each claim
//! carries a **witness** that [`verify_certificate`] re-validates without
//! trusting the planner:
//!
//! * the per-position ranks are checked as the *least fixpoint* of the
//!   rank equations over the dependency graph (Def. 5) — monotonicity
//!   along every edge certifies weak acyclicity, the fixpoint equality
//!   pins every single rank value;
//! * the marked positions/variables (Def. 8) are recomputed from Σst and
//!   compared as sets;
//! * the `C_tract` verdict (Def. 9) is re-derived with an independent
//!   implementation of conditions 1 / 2.1 / 2.2, and a named
//!   counterexample dependency is re-checked to actually violate its
//!   condition;
//! * the §4 regime, the predicted complexity classes, the recommended
//!   solver, and the budget arithmetic are all recomputed and compared.
//!
//! Certificates serialize to versioned JSON (hand-rolled, as everywhere
//! in this workspace: no serialization dependency) and parse back via a
//! small built-in JSON reader, so `pde solve --plan cert.json` can reuse
//! a saved plan after re-verifying it. See `docs/PLAN.md` for the schema.

use crate::termination::{TerminationCertificate, TerminationCriterion};
use pde_constraints::{DependencyGraph, Tgd};
use pde_core::{GenericLimits, PdeSetting, SolvePlan, SolverKind};
use pde_relational::{Position, Schema, Term, Var};
use pde_runtime::GovernorConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Version stamp of the JSON schema; bump on any layout change.
pub const CERTIFICATE_VERSION: u32 = 1;

/// Where the setting sits on the paper's §3/§4 complexity map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Σts = ∅: classic data exchange (\[FKMP\] baseline of §3).
    DataExchange,
    /// Σt = ∅ and (Σst, Σts) ∈ `C_tract` (Thm. 4).
    Tractable,
    /// Σt = ∅ but outside `C_tract` (Thm. 3 territory).
    OutsideCtract,
    /// Σts ≠ ∅ and Σt contains an egd (§4, first boundary).
    EgdBoundary,
    /// Σts ≠ ∅ and Σt contains a full tgd, no egds (§4, second boundary).
    FullTgdBoundary,
    /// Σts ≠ ∅, Σt nonempty with only existential target tgds.
    GeneralTarget,
    /// Not weakly acyclic, but a stronger criterion of the termination
    /// hierarchy (joint / super-weak acyclicity or the critical-instance
    /// check) certifies a finite chase: decidable with derived budgets,
    /// though outside the paper's Lemma 1 bound.
    CertifiedTerminating,
    /// No criterion of the termination hierarchy certifies the chased tgd
    /// set: no chase bound, Thm. 1's NP membership argument does not
    /// apply, and the chase may diverge.
    NonTerminating,
}

impl Regime {
    /// Stable string form used in the JSON serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Regime::DataExchange => "data-exchange",
            Regime::Tractable => "tractable",
            Regime::OutsideCtract => "outside-ctract",
            Regime::EgdBoundary => "egd-boundary",
            Regime::FullTgdBoundary => "full-tgd-boundary",
            Regime::GeneralTarget => "general-target",
            Regime::CertifiedTerminating => "certified-terminating",
            Regime::NonTerminating => "non-terminating",
        }
    }

    fn from_str(s: &str) -> Option<Regime> {
        Some(match s {
            "data-exchange" => Regime::DataExchange,
            "tractable" => Regime::Tractable,
            "outside-ctract" => Regime::OutsideCtract,
            "egd-boundary" => Regime::EgdBoundary,
            "full-tgd-boundary" => Regime::FullTgdBoundary,
            "general-target" => Regime::GeneralTarget,
            "certified-terminating" => Regime::CertifiedTerminating,
            "non-terminating" => Regime::NonTerminating,
            _ => return None,
        })
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Predicted complexity class of a decision problem for the setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComplexityClass {
    /// Solvable in polynomial time.
    PTime,
    /// NP-complete (a hardness reduction is known for the regime).
    NpComplete,
    /// In NP (membership by Thm. 1; no hardness claim for this shape).
    InNp,
    /// coNP-complete.
    ConpComplete,
    /// In coNP (membership by Thm. 2; no hardness claim for this shape).
    InConp,
    /// Decidable via a certified finite chase, but outside the paper's
    /// Lemma 1 polynomial bound — no sharper class is claimed.
    Decidable,
    /// No finite chase bound: the paper's upper-bound arguments do not
    /// apply.
    NoBound,
}

impl ComplexityClass {
    /// Stable string form used in the JSON serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            ComplexityClass::PTime => "PTIME",
            ComplexityClass::NpComplete => "NP-complete",
            ComplexityClass::InNp => "in NP",
            ComplexityClass::ConpComplete => "coNP-complete",
            ComplexityClass::InConp => "in coNP",
            ComplexityClass::Decidable => "decidable",
            ComplexityClass::NoBound => "no finite bound",
        }
    }

    fn from_str(s: &str) -> Option<ComplexityClass> {
        Some(match s {
            "PTIME" => ComplexityClass::PTime,
            "NP-complete" => ComplexityClass::NpComplete,
            "in NP" => ComplexityClass::InNp,
            "coNP-complete" => ComplexityClass::ConpComplete,
            "in coNP" => ComplexityClass::InConp,
            "decidable" => ComplexityClass::Decidable,
            "no finite bound" => ComplexityClass::NoBound,
            _ => return None,
        })
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable string form of a [`SolverKind`] for the JSON serialization.
pub fn solver_kind_str(kind: SolverKind) -> &'static str {
    match kind {
        SolverKind::DataExchange => "data-exchange",
        SolverKind::Tractable => "tractable",
        SolverKind::AssignmentSearch => "assignment-search",
        SolverKind::GenericSearch => "generic-search",
    }
}

fn solver_kind_from_str(s: &str) -> Option<SolverKind> {
    Some(match s {
        "data-exchange" => SolverKind::DataExchange,
        "tractable" => SolverKind::Tractable,
        "assignment-search" => SolverKind::AssignmentSearch,
        "generic-search" => SolverKind::GenericSearch,
        _ => return None,
    })
}

/// A schema position referenced by name (stable across processes, unlike
/// `RelId`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PositionRef {
    /// Relation name.
    pub rel: String,
    /// 0-based attribute index.
    pub attr: usize,
}

impl PositionRef {
    pub(crate) fn of(schema: &Schema, p: Position) -> PositionRef {
        PositionRef {
            rel: schema.name(p.rel).to_string(),
            attr: usize::from(p.attr),
        }
    }

    fn resolve(&self, schema: &Schema) -> Option<Position> {
        let rel = schema.rel_id(self.rel.as_str())?;
        if self.attr >= usize::from(schema.arity(rel)) {
            return None;
        }
        Some(Position::at(rel, self.attr))
    }
}

/// One entry of the rank witness: a position and its claimed rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankEntry {
    /// The position.
    pub pos: PositionRef,
    /// Maximum number of special edges on any path into the position.
    pub rank: usize,
}

/// An edge of the claimed special-cycle witness (present only when the
/// chased set is *not* weakly acyclic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleEdge {
    /// Source position.
    pub from: PositionRef,
    /// Destination position.
    pub to: PositionRef,
    /// Is this a special (existential-creating) edge?
    pub special: bool,
}

/// The Lemma 1 part of the certificate: ranks and the chase bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaseCertificate {
    /// Is the chased tgd set (Σst ∪ Σt tgds) weakly acyclic?
    pub weakly_acyclic: bool,
    /// Rank witness for every schema position (empty when not weakly
    /// acyclic).
    pub ranks: Vec<RankEntry>,
    /// Maximum rank over all positions.
    pub max_rank: usize,
    /// Degree of the certified polynomial `N(|I|)` bounding chase length:
    /// `max_arity · v^(max_rank + 1)` with `v` the largest premise
    /// variable count (saturating).
    pub degree: usize,
    /// Active-domain size the concrete bounds below were evaluated at.
    pub adom_size: usize,
    /// Upper bound on distinct values in any chase result.
    pub value_bound: usize,
    /// Upper bound on facts in any chase result.
    pub fact_bound: usize,
    /// Upper bound on the length of any chase sequence.
    pub step_bound: usize,
    /// Closed walk through a special edge witnessing non-weak-acyclicity
    /// (empty when weakly acyclic).
    pub special_cycle: Vec<CycleEdge>,
    /// The termination-hierarchy section: criterion trail, witness, and
    /// derived bounds (see [`crate::termination`] and
    /// `docs/TERMINATION.md`). Its weak-acyclicity verdict must agree
    /// with `weakly_acyclic` above.
    pub termination: TerminationCertificate,
}

/// A named counterexample dependency for a failed `C_tract` condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TractCounterexample {
    /// Which condition the witness violates: `"repeated-marked-variable"`
    /// (condition 1) or `"bad-marked-pair"` (condition 2.2).
    pub kind: String,
    /// Index of the offending tgd within Σts.
    pub tgd_index: usize,
    /// The variable(s) witnessing the violation.
    pub vars: Vec<String>,
}

/// The Def. 8 / Def. 9 part of the certificate: the marking witness and
/// the `C_tract` verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TractCertificate {
    /// Marked target positions induced by Σst (Def. 8).
    pub marked_positions: Vec<PositionRef>,
    /// Marked variables of each Σts tgd, indexed like `sigma_ts`.
    pub marked_variables: Vec<Vec<String>>,
    /// Does condition 1 hold?
    pub condition1: bool,
    /// Does condition 2.1 hold?
    pub condition2_1: bool,
    /// Does condition 2.2 hold?
    pub condition2_2: bool,
    /// Is every Σst tgd full (Corollary 1 shape)?
    pub st_all_full: bool,
    /// Is every Σts tgd LAV (Corollary 2 shape)?
    pub ts_all_lav: bool,
    /// Is the setting in `C_tract`?
    pub in_ctract: bool,
    /// A named violating dependency when outside `C_tract`.
    pub counterexample: Option<TractCounterexample>,
}

/// Solver budgets derived from the chase bound (see `docs/PLAN.md` for
/// the exact formulas).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budgets {
    /// Chase step cap (`step_bound` when weakly acyclic).
    pub chase_steps: usize,
    /// Chase fact cap (`fact_bound` when weakly acyclic).
    pub chase_facts: usize,
    /// Node budget for the complete searches.
    pub search_nodes: usize,
    /// Branch-width budget per existential (`value_bound` dominates every
    /// reachable active domain, so this cap never truncates the search).
    pub search_branches: usize,
}

/// A static complexity certificate for one PDE setting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Schema version of the serialized form.
    pub version: u32,
    /// §3/§4 regime.
    pub regime: Regime,
    /// Predicted complexity class of `SOL(P)`.
    pub sol_complexity: ComplexityClass,
    /// Predicted complexity class of certain answers (monotone queries).
    pub certain_complexity: ComplexityClass,
    /// The solver `decide` should dispatch to.
    pub recommended_solver: SolverKind,
    /// Lemma 1: ranks and the chase bound.
    pub chase: ChaseCertificate,
    /// Def. 8/9: marking witness and `C_tract` verdict.
    pub tract: TractCertificate,
    /// Derived solver budgets.
    pub budgets: Budgets,
}

/// Byte allowance per chased fact used by
/// [`Certificate::derived_governor_config`]: the columnar storage's own
/// budget constant, re-exported from `pde-relational`. It is measured from
/// `Relation::heap_bytes` accounting (columns + epochs + liveness +
/// membership set + per-attribute indexes come to ~40–90 bytes/fact at
/// arities 2–4, rounded up for load-factor headroom), so a run that stays
/// inside the certified fact bound never trips the derived budget. The
/// row-oriented layout this replaced needed a hard-coded 256 here.
pub const GOVERNOR_BYTES_PER_FACT: usize = pde_relational::BYTES_PER_FACT_BUDGET;

/// Fixed slack added on top of the per-fact allowance (1 MiB): covers the
/// solvers' non-instance state (frontiers, homomorphism search stacks) on
/// small inputs where the fact bound alone would be only a few KiB.
pub const GOVERNOR_SLACK_BYTES: usize = 1 << 20;

impl Certificate {
    /// Convert to a [`SolvePlan`] for `pde_core::decide_with_plan`.
    pub fn to_solve_plan(&self) -> SolvePlan {
        SolvePlan {
            kind: self.recommended_solver,
            limits: GenericLimits {
                max_nodes: self.budgets.search_nodes,
                max_branches: self.budgets.search_branches,
            },
            chase_limits: pde_chase::ChaseLimits {
                max_steps: self.budgets.chase_steps,
                max_facts: self.budgets.chase_facts,
            },
        }
    }

    /// Derive a [`GovernorConfig`] from the certified chase bound: when the
    /// setting is weakly acyclic, Lemma 1's `fact_bound` caps every
    /// reachable instance, so
    /// `fact_bound × GOVERNOR_BYTES_PER_FACT + GOVERNOR_SLACK_BYTES` is a
    /// memory budget no well-behaved run can trip — it only fires on a bug
    /// (runaway engine) — while still containing one. Beyond weak
    /// acyclicity, the termination hierarchy's certifying fact bound plays
    /// the same role. When no criterion certifies termination there is no
    /// bound and the memory budget is left unset. Deadlines and
    /// cancellation are operator policy, not derivable
    /// from the setting, so those fields stay `None`; merge them in at the
    /// call site.
    pub fn derived_governor_config(&self) -> GovernorConfig {
        // The weakest certifying criterion's fact bound: Lemma 1's when
        // weakly acyclic, the termination hierarchy's otherwise.
        let certified_fact_bound = if self.chase.weakly_acyclic {
            Some(self.chase.fact_bound)
        } else if self.chase.termination.certified() {
            Some(self.chase.termination.fact_bound)
        } else {
            None
        };
        let memory_budget_bytes = certified_fact_bound.and_then(|fact_bound| {
            let bytes = fact_bound
                .saturating_mul(GOVERNOR_BYTES_PER_FACT)
                .saturating_add(GOVERNOR_SLACK_BYTES);
            // A saturated bound is no bound at all.
            (bytes != usize::MAX).then_some(bytes)
        });
        GovernorConfig {
            deadline: None,
            memory_budget_bytes,
            cancel: None,
        }
    }
}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// The JSON is malformed or has the wrong shape.
    Malformed(String),
    /// Unsupported schema version.
    Version(u32),
    /// The rank witness fails the fixpoint equations of Def. 5.
    Rank(String),
    /// The marking witness disagrees with the Def. 8 fixpoint.
    Marking(String),
    /// A `C_tract` flag or the counterexample fails re-derivation.
    Ctract(String),
    /// Regime, predicted class, or recommended solver mismatch.
    Regime(String),
    /// The bound arithmetic does not re-derive.
    Bound(String),
    /// The budget derivation does not re-derive.
    Budget(String),
    /// The termination section (criterion trail, witness, or bound) does
    /// not replay.
    Termination(String),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::Malformed(m) => write!(f, "malformed certificate: {m}"),
            CertificateError::Version(v) => write!(
                f,
                "certificate version {v} unsupported (expected {CERTIFICATE_VERSION})"
            ),
            CertificateError::Rank(m) => write!(f, "rank witness rejected: {m}"),
            CertificateError::Marking(m) => write!(f, "marking witness rejected: {m}"),
            CertificateError::Ctract(m) => write!(f, "C_tract claim rejected: {m}"),
            CertificateError::Regime(m) => write!(f, "regime claim rejected: {m}"),
            CertificateError::Bound(m) => write!(f, "chase bound rejected: {m}"),
            CertificateError::Budget(m) => write!(f, "budget derivation rejected: {m}"),
            CertificateError::Termination(m) => {
                write!(f, "termination section rejected: {m}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

// ---------------------------------------------------------------------------
// Shared derivations (formulas that are part of the certificate *spec*).
// ---------------------------------------------------------------------------

/// The tgds whose violations force chase steps: Σst ∪ (tgds of Σt) — the
/// set both the generic solver and the data-exchange chase apply forward.
pub(crate) fn forward_tgds(setting: &PdeSetting) -> Vec<Tgd> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .chain(setting.target_tgds().cloned())
        .collect()
}

/// The (d, v, e, max_arity) parameters of the Lemma 1 bound.
pub(crate) fn bound_params(schema: &Schema, tgds: &[Tgd]) -> (usize, usize, usize, usize) {
    let mut d = 0usize;
    let mut v = 1usize;
    let mut e = 1usize;
    for t in tgds {
        d += 1;
        v = v.max(t.premise.variables().len().max(1));
        e = e.max(t.existentials.len().max(1));
    }
    let max_arity = schema
        .rel_ids()
        .map(|r| usize::from(schema.arity(r)))
        .max()
        .unwrap_or(0);
    (d, v, e, max_arity)
}

/// Evaluate the layered Lemma 1 recurrence at `adom_size`:
/// `(value_bound, fact_bound, step_bound)`. Mirrors
/// `pde_constraints::chase_bound` as an independent reimplementation —
/// the checker compares the two.
pub(crate) fn evaluate_bound(
    schema: &Schema,
    params: (usize, usize, usize, usize),
    max_rank: usize,
    adom_size: usize,
) -> (usize, usize, usize) {
    let (d, v, e, max_arity) = params;
    let mut g = adom_size.max(1);
    for _ in 0..=max_rank {
        let bindings = g.saturating_pow(u32::try_from(v).unwrap_or(u32::MAX));
        let fresh = d.saturating_mul(bindings).saturating_mul(e);
        g = g.saturating_add(fresh);
    }
    let fact_bound = (schema.len().max(1))
        .saturating_mul(g.saturating_pow(u32::try_from(max_arity).unwrap_or(u32::MAX)));
    (g, fact_bound, fact_bound.saturating_add(g))
}

/// Degree of the certified polynomial `N(|I|)`:
/// `max_arity · v^(max_rank + 1)`, saturating.
pub(crate) fn bound_degree(params: (usize, usize, usize, usize), max_rank: usize) -> usize {
    let (_, v, _, max_arity) = params;
    max_arity.saturating_mul(
        v.saturating_pow(u32::try_from(max_rank.saturating_add(1)).unwrap_or(u32::MAX)),
    )
}

/// Budget derivation from the verified bound (the certificate spec; see
/// `docs/PLAN.md`).
pub(crate) fn derive_budgets(chase: &ChaseCertificate) -> Budgets {
    if chase.weakly_acyclic {
        Budgets {
            chase_steps: chase.step_bound,
            chase_facts: chase.fact_bound,
            // Never below the historical default, scaled up for inputs
            // whose certified bound says the search state space is larger.
            search_nodes: chase
                .step_bound
                .saturating_mul(16)
                .clamp(1_000_000, 16_777_216),
            search_branches: chase.value_bound,
        }
    } else if chase.termination.certified() {
        // Certified beyond weak acyclicity: the hierarchy's bounds are
        // finite, so they budget the chase the same way Lemma 1's do.
        let t = &chase.termination;
        Budgets {
            chase_steps: t.step_bound,
            chase_facts: t.fact_bound,
            search_nodes: t.step_bound.saturating_mul(16).clamp(1_000_000, 16_777_216),
            search_branches: t.value_bound,
        }
    } else {
        Budgets {
            chase_steps: 1_000_000,
            chase_facts: 10_000_000,
            search_nodes: 1_000_000,
            search_branches: usize::MAX,
        }
    }
}

/// Regime → (SOL(P) class, certain-answers class).
pub(crate) fn predicted_classes(regime: Regime) -> (ComplexityClass, ComplexityClass) {
    match regime {
        // \[FKMP\]: chase + UCQ evaluation on the universal solution.
        Regime::DataExchange => (ComplexityClass::PTime, ComplexityClass::PTime),
        // Thm. 4 for SOL(P); certain answers in C_tract left open by §6,
        // so only the Thm. 2 coNP upper bound is certified.
        Regime::Tractable => (ComplexityClass::PTime, ComplexityClass::InConp),
        // Thm. 3 (CLIQUE), both directions.
        Regime::OutsideCtract => (ComplexityClass::NpComplete, ComplexityClass::ConpComplete),
        // §4 boundary reductions; coNP-hardness via vacuous certainty.
        Regime::EgdBoundary | Regime::FullTgdBoundary => {
            (ComplexityClass::NpComplete, ComplexityClass::ConpComplete)
        }
        // Thm. 1 / Thm. 2 memberships only.
        Regime::GeneralTarget => (ComplexityClass::InNp, ComplexityClass::InConp),
        // A certified finite chase gives decidability; the hierarchy's
        // bounds are not polynomial, so no sharper class is claimed.
        Regime::CertifiedTerminating => (ComplexityClass::Decidable, ComplexityClass::Decidable),
        Regime::NonTerminating => (ComplexityClass::NoBound, ComplexityClass::NoBound),
    }
}

/// Regime → solver dispatch (mirrors `pde_core::solver::decide`'s order).
pub(crate) fn recommended_solver(regime: Regime) -> SolverKind {
    match regime {
        Regime::DataExchange => SolverKind::DataExchange,
        Regime::Tractable => SolverKind::Tractable,
        Regime::OutsideCtract => SolverKind::AssignmentSearch,
        Regime::EgdBoundary
        | Regime::FullTgdBoundary
        | Regime::GeneralTarget
        | Regime::CertifiedTerminating
        | Regime::NonTerminating => SolverKind::GenericSearch,
    }
}

/// Derive the regime from the setting shape plus the (already verified)
/// termination section. Weak acyclicity keeps the paper's §3/§4 shape
/// analysis; a stronger certifying criterion maps to
/// [`Regime::CertifiedTerminating`]; a fully failed hierarchy to
/// [`Regime::NonTerminating`].
pub(crate) fn derive_regime(setting: &PdeSetting, termination: &TerminationCertificate) -> Regime {
    match termination.criterion {
        Some(TerminationCriterion::WeakAcyclicity) => {}
        Some(_) => return Regime::CertifiedTerminating,
        None => return Regime::NonTerminating,
    }
    if setting.is_data_exchange() {
        return Regime::DataExchange;
    }
    if setting.has_no_target_constraints() {
        let (c1, c21, c22) = derive_conditions(setting, &derive_marking(setting.sigma_st()));
        return if c1 && (c21 || c22) {
            Regime::Tractable
        } else {
            Regime::OutsideCtract
        };
    }
    if setting.target_egds().next().is_some() {
        return Regime::EgdBoundary;
    }
    if setting.target_tgds().any(Tgd::is_full) {
        return Regime::FullTgdBoundary;
    }
    Regime::GeneralTarget
}

/// Recompute the Def. 8 marking directly from Σst (independent of
/// `pde_constraints::Marking`).
pub(crate) fn derive_marking(sigma_st: &[Tgd]) -> BTreeSet<Position> {
    let mut marked = BTreeSet::new();
    for tgd in sigma_st {
        for atom in &tgd.conclusion.atoms {
            for (i, t) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    if tgd.existentials.contains(v) {
                        marked.insert(Position::at(atom.rel, i));
                    }
                }
            }
        }
    }
    marked
}

/// Marked variables of one Σts tgd under a marking (Def. 8).
pub(crate) fn derive_marked_vars(marked: &BTreeSet<Position>, d: &Tgd) -> BTreeSet<Var> {
    let mut out: BTreeSet<Var> = d.existentials.iter().copied().collect();
    for atom in &d.premise.atoms {
        for (i, t) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                if marked.contains(&Position::at(atom.rel, i)) {
                    out.insert(*v);
                }
            }
        }
    }
    out
}

/// Independently re-derive the three `C_tract` conditions (Def. 9).
pub(crate) fn derive_conditions(
    setting: &PdeSetting,
    marked: &BTreeSet<Position>,
) -> (bool, bool, bool) {
    let mut c1 = true;
    let mut c21 = true;
    let mut c22 = true;
    for d in setting.sigma_ts() {
        let mv = derive_marked_vars(marked, d);
        for v in &mv {
            if d.premise.occurrences_of(*v) > 1 {
                c1 = false;
            }
        }
        if d.premise.len() != 1 {
            c21 = false;
        }
        if !marked_pairs_ok(d, &mv) {
            c22 = false;
        }
    }
    (c1, c21, c22)
}

/// Condition 2.2 for one tgd: every pair of marked variables co-occurring
/// in an RHS conjunct co-occurs in an LHS conjunct or is absent from the
/// LHS entirely.
fn marked_pairs_ok(d: &Tgd, marked_vars: &BTreeSet<Var>) -> bool {
    let lhs_vars = d.premise.variables();
    for atom in &d.conclusion.atoms {
        let here: BTreeSet<Var> = atom
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) if marked_vars.contains(v) => Some(*v),
                _ => None,
            })
            .collect();
        let here: Vec<Var> = here.into_iter().collect();
        for a in 0..here.len() {
            for b in (a + 1)..here.len() {
                let (x, y) = (here[a], here[b]);
                let both_absent = !lhs_vars.contains(&x) && !lhs_vars.contains(&y);
                let co_occur = d.premise.atoms.iter().any(|p| {
                    let vs = p.variables();
                    vs.contains(&x) && vs.contains(&y)
                });
                if !both_absent && !co_occur {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// The independent checker.
// ---------------------------------------------------------------------------

/// Re-validate every witness of `cert` against `setting` without trusting
/// the planner. Accepts exactly the certificates the planner emits for
/// this setting (up to soundness-preserving details); rejects any edit to
/// a rank, a marking entry, a flag, a bound, a budget, or the routing.
pub fn verify_certificate(
    setting: &PdeSetting,
    cert: &Certificate,
) -> Result<(), CertificateError> {
    if cert.version != CERTIFICATE_VERSION {
        return Err(CertificateError::Version(cert.version));
    }
    let schema = setting.schema();
    let forward = forward_tgds(setting);
    let graph = DependencyGraph::new(schema, &forward);

    // 1. Rank witness / special-cycle witness.
    let max_rank = if cert.chase.weakly_acyclic {
        verify_ranks(schema, &graph, &cert.chase)?
    } else {
        verify_special_cycle(schema, &graph, &cert.chase)?;
        0
    };

    // 2. Bound arithmetic (only meaningful when weakly acyclic).
    if cert.chase.weakly_acyclic {
        let params = bound_params(schema, &forward);
        let (value, fact, step) = evaluate_bound(schema, params, max_rank, cert.chase.adom_size);
        if (
            cert.chase.value_bound,
            cert.chase.fact_bound,
            cert.chase.step_bound,
        ) != (value, fact, step)
        {
            return Err(CertificateError::Bound(format!(
                "claimed (value, fact, step) = ({}, {}, {}), recomputed ({value}, {fact}, {step})",
                cert.chase.value_bound, cert.chase.fact_bound, cert.chase.step_bound
            )));
        }
        let degree = bound_degree(params, max_rank);
        if cert.chase.degree != degree {
            return Err(CertificateError::Bound(format!(
                "claimed degree {} but the Lemma 1 recurrence has degree {degree}",
                cert.chase.degree
            )));
        }
        if cert.chase.max_rank != max_rank {
            return Err(CertificateError::Bound(format!(
                "claimed max_rank {} but the rank witness tops out at {max_rank}",
                cert.chase.max_rank
            )));
        }
    }

    // 3. Termination section: replay the criterion trail, the witness,
    // and the hierarchy bounds, then pin its consistency with the
    // weak-acyclicity flag and adom above.
    crate::termination::verify_tgds(schema, &forward, &cert.chase.termination)?;
    let term_wa = cert.chase.termination.criterion == Some(TerminationCriterion::WeakAcyclicity);
    if term_wa != cert.chase.weakly_acyclic {
        return Err(CertificateError::Termination(format!(
            "termination criterion {:?} contradicts weakly_acyclic = {}",
            cert.chase.termination.criterion, cert.chase.weakly_acyclic
        )));
    }
    if cert.chase.termination.adom_size != cert.chase.adom_size {
        return Err(CertificateError::Termination(format!(
            "termination section evaluated at |adom| = {}, chase section at {}",
            cert.chase.termination.adom_size, cert.chase.adom_size
        )));
    }

    // 4. Marking fixpoint.
    verify_marking(setting, &cert.tract)?;

    // 5. C_tract flags and the counterexample.
    verify_ctract(setting, &cert.tract)?;

    // 6. Regime, predicted classes, recommended solver.
    let regime = derive_regime(setting, &cert.chase.termination);
    if cert.regime != regime {
        return Err(CertificateError::Regime(format!(
            "claimed regime '{}' but the setting shape derives '{regime}'",
            cert.regime
        )));
    }
    let (sol, certain) = predicted_classes(regime);
    if cert.sol_complexity != sol || cert.certain_complexity != certain {
        return Err(CertificateError::Regime(format!(
            "regime '{regime}' predicts SOL: {sol}, certain: {certain}; certificate says \
             SOL: {}, certain: {}",
            cert.sol_complexity, cert.certain_complexity
        )));
    }
    let solver = recommended_solver(regime);
    if cert.recommended_solver != solver {
        return Err(CertificateError::Regime(format!(
            "regime '{regime}' routes to {solver}, certificate recommends {}",
            cert.recommended_solver
        )));
    }

    // 7. Budget derivation.
    let budgets = derive_budgets(&cert.chase);
    if cert.budgets != budgets {
        return Err(CertificateError::Budget(format!(
            "claimed {:?}, derived {budgets:?}",
            cert.budgets
        )));
    }
    Ok(())
}

/// Check the rank witness: total coverage of the schema positions plus
/// the least-fixpoint equations `rank(q) = max(0, max over edges p→q of
/// rank(p) + special)`. Monotonicity (≥) along every edge already rules
/// out special cycles — a rank function cannot strictly increase around a
/// cycle — and the independent fixpoint recomputation pins each value.
/// Returns the verified maximum rank.
fn verify_ranks(
    schema: &Schema,
    graph: &DependencyGraph,
    chase: &ChaseCertificate,
) -> Result<usize, CertificateError> {
    let mut claimed: HashMap<Position, usize> = HashMap::new();
    for entry in &chase.ranks {
        let pos = entry.pos.resolve(schema).ok_or_else(|| {
            CertificateError::Rank(format!(
                "unknown position {}.{}",
                entry.pos.rel, entry.pos.attr
            ))
        })?;
        if claimed.insert(pos, entry.rank).is_some() {
            return Err(CertificateError::Rank(format!(
                "duplicate entry for {}.{}",
                entry.pos.rel, entry.pos.attr
            )));
        }
    }
    for p in schema.positions() {
        if !claimed.contains_key(&p) {
            return Err(CertificateError::Rank(format!(
                "no rank claimed for {}.{}",
                schema.name(p.rel),
                p.attr
            )));
        }
    }
    if !chase.special_cycle.is_empty() {
        return Err(CertificateError::Rank(
            "weakly acyclic certificate carries a special-cycle witness".into(),
        ));
    }
    // Monotonicity: any violation means the claimed assignment is not a
    // valid ranking at all.
    for e in graph.edges() {
        let need = claimed[&e.from] + usize::from(e.special);
        if claimed[&e.to] < need {
            return Err(CertificateError::Rank(format!(
                "edge {}.{} -> {}.{} ({}) needs rank >= {need}, claimed {}",
                schema.name(e.from.rel),
                e.from.attr,
                schema.name(e.to.rel),
                e.to.attr,
                if e.special { "special" } else { "ordinary" },
                claimed[&e.to]
            )));
        }
    }
    // Least fixpoint by relaxation from zero. Monotonicity above proved
    // there is no special cycle, so the relaxation converges; the claimed
    // ranks bound it from above, which caps the work.
    let positions: Vec<Position> = schema.positions().collect();
    let mut fix: BTreeMap<Position, usize> = positions.iter().map(|p| (*p, 0)).collect();
    let rounds = positions.len().saturating_add(2);
    for _ in 0..rounds {
        let mut changed = false;
        for e in graph.edges() {
            let cand = fix[&e.from] + usize::from(e.special);
            if fix[&e.to] < cand {
                fix.insert(e.to, cand);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (p, r) in &fix {
        if claimed[p] != *r {
            return Err(CertificateError::Rank(format!(
                "{}.{} claims rank {} but the least fixpoint gives {r}",
                schema.name(p.rel),
                p.attr,
                claimed[p]
            )));
        }
    }
    Ok(fix.values().copied().max().unwrap_or(0))
}

/// Check the special-cycle witness: every edge exists in the recomputed
/// graph, consecutive edges chain, the walk is closed, and at least one
/// edge is special.
fn verify_special_cycle(
    schema: &Schema,
    graph: &DependencyGraph,
    chase: &ChaseCertificate,
) -> Result<(), CertificateError> {
    if !chase.ranks.is_empty() {
        return Err(CertificateError::Rank(
            "non-weakly-acyclic certificate carries a rank witness".into(),
        ));
    }
    let walk = &chase.special_cycle;
    if walk.is_empty() {
        return Err(CertificateError::Rank(
            "non-weakly-acyclic claim needs a special-cycle witness".into(),
        ));
    }
    let resolve = |p: &PositionRef| {
        p.resolve(schema)
            .ok_or_else(|| CertificateError::Rank(format!("unknown position {}.{}", p.rel, p.attr)))
    };
    let edges: BTreeSet<(Position, Position, bool)> =
        graph.edges().map(|e| (e.from, e.to, e.special)).collect();
    let mut any_special = false;
    for (i, e) in walk.iter().enumerate() {
        let from = resolve(&e.from)?;
        let to = resolve(&e.to)?;
        if !edges.contains(&(from, to, e.special)) {
            return Err(CertificateError::Rank(format!(
                "witness edge {}.{} -> {}.{} is not in the dependency graph",
                e.from.rel, e.from.attr, e.to.rel, e.to.attr
            )));
        }
        let next = &walk[(i + 1) % walk.len()];
        if e.to != next.from {
            return Err(CertificateError::Rank(
                "witness edges do not chain into a closed walk".into(),
            ));
        }
        any_special |= e.special;
    }
    if !any_special {
        return Err(CertificateError::Rank(
            "witness cycle has no special edge".into(),
        ));
    }
    Ok(())
}

/// Check the marking witness against the Def. 8 fixpoint.
fn verify_marking(setting: &PdeSetting, tract: &TractCertificate) -> Result<(), CertificateError> {
    let schema = setting.schema();
    let derived = derive_marking(setting.sigma_st());
    let mut claimed = BTreeSet::new();
    for p in &tract.marked_positions {
        let pos = p.resolve(schema).ok_or_else(|| {
            CertificateError::Marking(format!("unknown position {}.{}", p.rel, p.attr))
        })?;
        claimed.insert(pos);
    }
    if claimed != derived {
        return Err(CertificateError::Marking(format!(
            "claimed {} marked position(s), Def. 8 derives {}",
            claimed.len(),
            derived.len()
        )));
    }
    if tract.marked_variables.len() != setting.sigma_ts().len() {
        return Err(CertificateError::Marking(format!(
            "marked-variable lists for {} tgd(s), Σts has {}",
            tract.marked_variables.len(),
            setting.sigma_ts().len()
        )));
    }
    for (i, d) in setting.sigma_ts().iter().enumerate() {
        let derived: BTreeSet<String> = derive_marked_vars(&derived, d)
            .iter()
            .map(ToString::to_string)
            .collect();
        let claimed: BTreeSet<String> = tract.marked_variables[i].iter().cloned().collect();
        if claimed != derived {
            return Err(CertificateError::Marking(format!(
                "ts-tgd #{i}: claimed marked variables {claimed:?}, derived {derived:?}"
            )));
        }
    }
    Ok(())
}

/// Check the `C_tract` flags and the named counterexample.
fn verify_ctract(setting: &PdeSetting, tract: &TractCertificate) -> Result<(), CertificateError> {
    let marked = derive_marking(setting.sigma_st());
    let (c1, c21, c22) = derive_conditions(setting, &marked);
    let in_ctract = c1 && (c21 || c22);
    let st_all_full = setting.sigma_st().iter().all(Tgd::is_full);
    let ts_all_lav = setting.sigma_ts().iter().all(Tgd::is_lav);
    let claims = (
        tract.condition1,
        tract.condition2_1,
        tract.condition2_2,
        tract.st_all_full,
        tract.ts_all_lav,
        tract.in_ctract,
    );
    let derived = (c1, c21, c22, st_all_full, ts_all_lav, in_ctract);
    if claims != derived {
        return Err(CertificateError::Ctract(format!(
            "claimed (1, 2.1, 2.2, full-st, lav-ts, in) = {claims:?}, derived {derived:?}"
        )));
    }
    match (&tract.counterexample, in_ctract) {
        (Some(_), true) => Err(CertificateError::Ctract(
            "certificate claims C_tract membership yet names a counterexample".into(),
        )),
        (None, false) => Err(CertificateError::Ctract(
            "outside C_tract but no counterexample dependency is named".into(),
        )),
        (None, true) => Ok(()),
        (Some(cx), false) => verify_counterexample(setting, &marked, cx),
    }
}

/// Re-check that the named counterexample actually violates its condition.
fn verify_counterexample(
    setting: &PdeSetting,
    marked: &BTreeSet<Position>,
    cx: &TractCounterexample,
) -> Result<(), CertificateError> {
    let Some(d) = setting.sigma_ts().get(cx.tgd_index) else {
        return Err(CertificateError::Ctract(format!(
            "counterexample names ts-tgd #{} but Σts has {}",
            cx.tgd_index,
            setting.sigma_ts().len()
        )));
    };
    let mv = derive_marked_vars(marked, d);
    match cx.kind.as_str() {
        "repeated-marked-variable" => {
            let [v] = cx.vars.as_slice() else {
                return Err(CertificateError::Ctract(
                    "repeated-marked-variable counterexample needs exactly one variable".into(),
                ));
            };
            let var = Var::new(v.clone());
            if !mv.contains(&var) || d.premise.occurrences_of(var) <= 1 {
                return Err(CertificateError::Ctract(format!(
                    "variable {v} does not witness a condition-1 violation in ts-tgd #{}",
                    cx.tgd_index
                )));
            }
            Ok(())
        }
        "bad-marked-pair" => {
            let [x, y] = cx.vars.as_slice() else {
                return Err(CertificateError::Ctract(
                    "bad-marked-pair counterexample needs exactly two variables".into(),
                ));
            };
            let (x, y) = (Var::new(x.clone()), Var::new(y.clone()));
            let pair: BTreeSet<Var> = [x, y].into_iter().collect();
            if !mv.contains(&x) || !mv.contains(&y) || !marked_pair_violates(d, &pair) {
                return Err(CertificateError::Ctract(format!(
                    "pair ({x}, {y}) does not witness a condition-2.2 violation in ts-tgd #{}",
                    cx.tgd_index
                )));
            }
            Ok(())
        }
        other => Err(CertificateError::Ctract(format!(
            "unknown counterexample kind '{other}'"
        ))),
    }
}

/// Does this specific pair of (marked) variables violate condition 2.2 in
/// `d`: co-occurs in an RHS conjunct, yet neither co-occurs in an LHS
/// conjunct nor is absent from the LHS entirely?
fn marked_pair_violates(d: &Tgd, pair: &BTreeSet<Var>) -> bool {
    let in_rhs_conjunct = d.conclusion.atoms.iter().any(|a| {
        let vs = a.variables();
        pair.iter().all(|v| vs.contains(v))
    });
    if !in_rhs_conjunct {
        return false;
    }
    let lhs_vars = d.premise.variables();
    let both_absent = pair.iter().all(|v| !lhs_vars.contains(v));
    let co_occur_lhs = d.premise.atoms.iter().any(|p| {
        let vs = p.variables();
        pair.iter().all(|v| vs.contains(v))
    });
    !both_absent && !co_occur_lhs
}

// ---------------------------------------------------------------------------
// JSON serialization.
// ---------------------------------------------------------------------------

impl Certificate {
    /// Serialize as the versioned JSON schema of `docs/PLAN.md`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"version\":{}", self.version));
        out.push_str(&format!(",\"regime\":{}", json_str(self.regime.as_str())));
        out.push_str(&format!(
            ",\"sol_complexity\":{}",
            json_str(self.sol_complexity.as_str())
        ));
        out.push_str(&format!(
            ",\"certain_complexity\":{}",
            json_str(self.certain_complexity.as_str())
        ));
        out.push_str(&format!(
            ",\"recommended_solver\":{}",
            json_str(solver_kind_str(self.recommended_solver))
        ));
        let c = &self.chase;
        out.push_str(&format!(
            ",\"chase\":{{\"weakly_acyclic\":{},\"max_rank\":{},\"degree\":{},\
             \"adom_size\":{},\"value_bound\":{},\"fact_bound\":{},\"step_bound\":{}",
            c.weakly_acyclic,
            c.max_rank,
            c.degree,
            c.adom_size,
            c.value_bound,
            c.fact_bound,
            c.step_bound
        ));
        out.push_str(",\"ranks\":[");
        for (i, r) in c.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rel\":{},\"attr\":{},\"rank\":{}}}",
                json_str(&r.pos.rel),
                r.pos.attr,
                r.rank
            ));
        }
        out.push_str("],\"special_cycle\":[");
        for (i, e) in c.special_cycle.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from_rel\":{},\"from_attr\":{},\"to_rel\":{},\"to_attr\":{},\"special\":{}}}",
                json_str(&e.from.rel),
                e.from.attr,
                json_str(&e.to.rel),
                e.to.attr,
                e.special
            ));
        }
        out.push_str("],\"termination\":");
        out.push_str(&c.termination.to_json());
        out.push('}');
        let t = &self.tract;
        out.push_str(&format!(
            ",\"tract\":{{\"condition1\":{},\"condition2_1\":{},\"condition2_2\":{},\
             \"st_all_full\":{},\"ts_all_lav\":{},\"in_ctract\":{}",
            t.condition1, t.condition2_1, t.condition2_2, t.st_all_full, t.ts_all_lav, t.in_ctract
        ));
        out.push_str(",\"marked_positions\":[");
        for (i, p) in t.marked_positions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rel\":{},\"attr\":{}}}",
                json_str(&p.rel),
                p.attr
            ));
        }
        out.push_str("],\"marked_variables\":[");
        for (i, vars) in t.marked_variables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, v) in vars.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push(']');
        }
        out.push(']');
        if let Some(cx) = &t.counterexample {
            out.push_str(&format!(
                ",\"counterexample\":{{\"kind\":{},\"tgd_index\":{},\"vars\":[",
                json_str(&cx.kind),
                cx.tgd_index
            ));
            for (j, v) in cx.vars.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(v));
            }
            out.push_str("]}");
        }
        out.push('}');
        let b = &self.budgets;
        out.push_str(&format!(
            ",\"budgets\":{{\"chase_steps\":{},\"chase_facts\":{},\"search_nodes\":{},\
             \"search_branches\":{}}}",
            b.chase_steps, b.chase_facts, b.search_nodes, b.search_branches
        ));
        out.push('}');
        out
    }

    /// Parse the JSON serialization back. Shape errors come back as
    /// [`CertificateError::Malformed`]; semantic validity is the job of
    /// [`verify_certificate`].
    pub fn from_json(src: &str) -> Result<Certificate, CertificateError> {
        let v = json::parse(src).map_err(CertificateError::Malformed)?;
        let top = v.as_obj("certificate")?;
        let version = top.get_num("version")?;
        let version = u32::try_from(version)
            .map_err(|_| CertificateError::Malformed("version out of range".into()))?;
        let regime = Regime::from_str(&top.get_str("regime")?)
            .ok_or_else(|| CertificateError::Malformed("unknown regime".into()))?;
        let sol_complexity = ComplexityClass::from_str(&top.get_str("sol_complexity")?)
            .ok_or_else(|| CertificateError::Malformed("unknown sol_complexity".into()))?;
        let certain_complexity = ComplexityClass::from_str(&top.get_str("certain_complexity")?)
            .ok_or_else(|| CertificateError::Malformed("unknown certain_complexity".into()))?;
        let recommended_solver = solver_kind_from_str(&top.get_str("recommended_solver")?)
            .ok_or_else(|| CertificateError::Malformed("unknown recommended_solver".into()))?;

        let cv = top.field_of("chase")?;
        let co = cv.as_obj("chase")?;
        let mut ranks = Vec::new();
        for item in cv.get_arr("ranks")? {
            let o = item.as_obj("ranks[]")?;
            ranks.push(RankEntry {
                pos: PositionRef {
                    rel: o.get_str("rel")?,
                    attr: o.get_num("attr")?,
                },
                rank: o.get_num("rank")?,
            });
        }
        let mut special_cycle = Vec::new();
        for item in cv.get_arr("special_cycle")? {
            let o = item.as_obj("special_cycle[]")?;
            special_cycle.push(CycleEdge {
                from: PositionRef {
                    rel: o.get_str("from_rel")?,
                    attr: o.get_num("from_attr")?,
                },
                to: PositionRef {
                    rel: o.get_str("to_rel")?,
                    attr: o.get_num("to_attr")?,
                },
                special: o.get_bool("special")?,
            });
        }
        let termination = TerminationCertificate::from_json_value(co.field_of("termination")?)?;
        let chase = ChaseCertificate {
            weakly_acyclic: co.get_bool("weakly_acyclic")?,
            ranks,
            max_rank: co.get_num("max_rank")?,
            degree: co.get_num("degree")?,
            adom_size: co.get_num("adom_size")?,
            value_bound: co.get_num("value_bound")?,
            fact_bound: co.get_num("fact_bound")?,
            step_bound: co.get_num("step_bound")?,
            special_cycle,
            termination,
        };

        let tv = top.field_of("tract")?;
        let to = tv.as_obj("tract")?;
        let mut marked_positions = Vec::new();
        for item in tv.get_arr("marked_positions")? {
            let o = item.as_obj("marked_positions[]")?;
            marked_positions.push(PositionRef {
                rel: o.get_str("rel")?,
                attr: o.get_num("attr")?,
            });
        }
        let mut marked_variables = Vec::new();
        for item in tv.get_arr("marked_variables")? {
            let json::Json::Arr(inner) = item else {
                return Err(CertificateError::Malformed(
                    "marked_variables[] must be an array".into(),
                ));
            };
            let mut vars = Vec::new();
            for v in inner {
                let json::Json::Str(s) = v else {
                    return Err(CertificateError::Malformed(
                        "marked_variables[][] must be a string".into(),
                    ));
                };
                vars.push(s.clone());
            }
            marked_variables.push(vars);
        }
        let counterexample = match to.try_get("counterexample") {
            None => None,
            Some(cxv) => {
                let o = cxv.as_obj("counterexample")?;
                let mut vars = Vec::new();
                for v in cxv.get_arr("vars")? {
                    let json::Json::Str(s) = v else {
                        return Err(CertificateError::Malformed(
                            "counterexample vars must be strings".into(),
                        ));
                    };
                    vars.push(s.clone());
                }
                Some(TractCounterexample {
                    kind: o.get_str("kind")?,
                    tgd_index: o.get_num("tgd_index")?,
                    vars,
                })
            }
        };
        let tract = TractCertificate {
            marked_positions,
            marked_variables,
            condition1: to.get_bool("condition1")?,
            condition2_1: to.get_bool("condition2_1")?,
            condition2_2: to.get_bool("condition2_2")?,
            st_all_full: to.get_bool("st_all_full")?,
            ts_all_lav: to.get_bool("ts_all_lav")?,
            in_ctract: to.get_bool("in_ctract")?,
            counterexample,
        };

        let bo = top.field_of("budgets")?.as_obj("budgets")?;
        let budgets = Budgets {
            chase_steps: bo.get_num("chase_steps")?,
            chase_facts: bo.get_num("chase_facts")?,
            search_nodes: bo.get_num("search_nodes")?,
            search_branches: bo.get_num("search_branches")?,
        };

        Ok(Certificate {
            version,
            regime,
            sol_complexity,
            certain_complexity,
            recommended_solver,
            chase,
            tract,
            budgets,
        })
    }
}

/// JSON string literal with escaping (same rules as the lint renderer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON reader: just enough to load certificates back. The
/// workspace deliberately has no serialization dependency, so parsing is
/// hand-rolled like the writers. Shared crate-internally with the rewrite
/// certificate loader ([`crate::rewrite`]).
pub(crate) mod json {
    use super::CertificateError;

    /// A parsed JSON value. Numbers are restricted to the unsigned
    /// integers the certificate uses.
    #[derive(Clone, Debug, PartialEq)]
    pub(crate) enum Json {
        Null,
        Bool(bool),
        Num(u128),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub(crate) fn as_obj<'a>(
            &'a self,
            what: &str,
        ) -> Result<&'a [(String, Json)], CertificateError> {
            match self {
                Json::Obj(fields) => Ok(fields),
                _ => Err(CertificateError::Malformed(format!(
                    "{what} must be an object"
                ))),
            }
        }

        fn field<'a>(&'a self, key: &str) -> Option<&'a Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub(crate) fn get_arr<'a>(&'a self, key: &str) -> Result<&'a [Json], CertificateError> {
            match self.field(key) {
                Some(Json::Arr(items)) => Ok(items),
                _ => Err(CertificateError::Malformed(format!(
                    "missing array field '{key}'"
                ))),
            }
        }
    }

    /// Field accessors on an object's field list.
    pub(crate) trait ObjExt {
        fn try_get(&self, key: &str) -> Option<&Json>;
        fn field_of(&self, key: &str) -> Result<&Json, CertificateError>;
        fn get_str(&self, key: &str) -> Result<String, CertificateError>;
        fn get_bool(&self, key: &str) -> Result<bool, CertificateError>;
        fn get_num(&self, key: &str) -> Result<usize, CertificateError>;
    }

    impl ObjExt for [(String, Json)] {
        fn try_get(&self, key: &str) -> Option<&Json> {
            self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        fn field_of(&self, key: &str) -> Result<&Json, CertificateError> {
            self.try_get(key)
                .ok_or_else(|| CertificateError::Malformed(format!("missing field '{key}'")))
        }

        fn get_str(&self, key: &str) -> Result<String, CertificateError> {
            match self.field_of(key)? {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(CertificateError::Malformed(format!(
                    "field '{key}' must be a string"
                ))),
            }
        }

        fn get_bool(&self, key: &str) -> Result<bool, CertificateError> {
            match self.field_of(key)? {
                Json::Bool(b) => Ok(*b),
                _ => Err(CertificateError::Malformed(format!(
                    "field '{key}' must be a boolean"
                ))),
            }
        }

        fn get_num(&self, key: &str) -> Result<usize, CertificateError> {
            match self.field_of(key)? {
                Json::Num(n) => Ok(usize::try_from(*n).unwrap_or(usize::MAX)),
                _ => Err(CertificateError::Malformed(format!(
                    "field '{key}' must be an unsigned integer"
                ))),
            }
        }
    }

    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut at = 0usize;
        let v = value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing content at byte {at}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], at: &mut usize) {
        while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        }
    }

    fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, at);
        if *at < b.len() && b[*at] == c {
            *at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {at}", c as char))
        }
    }

    fn value(b: &[u8], at: &mut usize) -> Result<Json, String> {
        skip_ws(b, at);
        match b.get(*at) {
            Some(b'{') => {
                *at += 1;
                let mut fields = Vec::new();
                skip_ws(b, at);
                if b.get(*at) == Some(&b'}') {
                    *at += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(b, at);
                    let key = match string(b, at)? {
                        Json::Str(s) => s,
                        _ => unreachable!(),
                    };
                    expect(b, at, b':')?;
                    let v = value(b, at)?;
                    fields.push((key, v));
                    skip_ws(b, at);
                    match b.get(*at) {
                        Some(b',') => *at += 1,
                        Some(b'}') => {
                            *at += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                    }
                }
            }
            Some(b'[') => {
                *at += 1;
                let mut items = Vec::new();
                skip_ws(b, at);
                if b.get(*at) == Some(&b']') {
                    *at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(value(b, at)?);
                    skip_ws(b, at);
                    match b.get(*at) {
                        Some(b',') => *at += 1,
                        Some(b']') => {
                            *at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {at}")),
                    }
                }
            }
            Some(b'"') => string(b, at),
            Some(b't') if b[*at..].starts_with(b"true") => {
                *at += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if b[*at..].starts_with(b"false") => {
                *at += 5;
                Ok(Json::Bool(false))
            }
            Some(b'n') if b[*at..].starts_with(b"null") => {
                *at += 4;
                Ok(Json::Null)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *at;
                while *at < b.len() && b[*at].is_ascii_digit() {
                    *at += 1;
                }
                let digits = std::str::from_utf8(&b[start..*at]).expect("ascii digits");
                digits
                    .parse::<u128>()
                    .map(Json::Num)
                    .map_err(|_| format!("number out of range at byte {start}"))
            }
            _ => Err(format!("unexpected input at byte {at}")),
        }
    }

    fn string(b: &[u8], at: &mut usize) -> Result<Json, String> {
        if b.get(*at) != Some(&b'"') {
            return Err(format!("expected string at byte {at}"));
        }
        *at += 1;
        let mut out = String::new();
        loop {
            match b.get(*at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *at += 1;
                    return Ok(Json::Str(out));
                }
                Some(b'\\') => {
                    *at += 1;
                    match b.get(*at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*at + 1..*at + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_owned())?,
                            );
                            *at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {at}")),
                    }
                    *at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&b[*at..])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    *at += c.len_utf8();
                }
            }
        }
    }
}

use json::ObjExt as _;
