//! Semantics-preserving dependency rewriting (`pde optimize`).
//!
//! Four pruning passes shrink a setting without changing `SOL(P)` or the
//! certain answers of any union of conjunctive queries:
//!
//! 1. **trivial egds** — `… -> x = x` is a tautology;
//! 2. **duplicates** — alpha-equivalent dependencies in one group fire the
//!    same triggers twice; the first occurrence is kept (detected by a
//!    canonicalized dependency key, de Bruijn-renamed by first occurrence);
//! 3. **subsumed dependencies** — a tgd whose frozen premise, chased with
//!    an earlier surviving tgd, already satisfies its conclusion is a
//!    logical consequence of that tgd (the `analyzer::subsumed_by`
//!    check behind lint `PDE021`); an egd implied by an earlier egd via a
//!    premise homomorphism mapping the equated pair onto it likewise;
//! 4. **dead dependencies** — a dependency whose premise mentions a
//!    relation that is empty in the actual input and unpopulatable by any
//!    surviving tgd can never fire; removing it is sound because any
//!    solution of the optimized setting, restricted to the populatable
//!    relations, is a solution of the original setting (and certain
//!    answers transfer by monotonicity of unions of conjunctive queries).
//!
//! Every deletion carries a machine-checkable witness inside a
//! [`RewriteCertificate`]; [`verify_rewrite`] replays the derivation
//! independently of the optimizer invocation that produced the
//! certificate and rejects on any divergence, mirroring
//! `verify_certificate` in [`crate::plan`].
//!
//! Passes 1–3 depend only on the setting; pass 4 additionally depends on
//! which relations are nonempty in the input instance, which is why the
//! certificate records that set and the verifier recomputes it.

use crate::analyzer::subsumed_by;
use crate::certificate::{json, json_str};
use pde_constraints::{Dependency, Egd, Tgd};
use pde_core::setting::PdeSetting;
use pde_relational::{
    for_each_hom_with, Assignment, HomConfig, Instance, RelId, Schema, Term, Tuple, Value, Var,
};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Version tag of the rewrite-certificate format.
pub const REWRITE_VERSION: u32 = 1;

/// Which dependency group of the setting an action refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewriteGroup {
    /// Σst (source-to-target tgds).
    SigmaSt,
    /// Σts (target-to-source tgds).
    SigmaTs,
    /// Σt (target tgds and egds).
    SigmaT,
}

impl RewriteGroup {
    /// Stable group name used in certificates and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RewriteGroup::SigmaSt => "sigma_st",
            RewriteGroup::SigmaTs => "sigma_ts",
            RewriteGroup::SigmaT => "sigma_t",
        }
    }

    fn from_str(s: &str) -> Option<RewriteGroup> {
        match s {
            "sigma_st" => Some(RewriteGroup::SigmaSt),
            "sigma_ts" => Some(RewriteGroup::SigmaTs),
            "sigma_t" => Some(RewriteGroup::SigmaT),
            _ => None,
        }
    }
}

impl fmt::Display for RewriteGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One pruning step, with the witness that justifies it. Indices are
/// positions in the *original* group, so actions remain meaningful after
/// earlier deletions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteAction {
    /// The egd at `index` equates a variable with itself.
    RemoveTrivialEgd {
        /// Group containing the egd.
        group: RewriteGroup,
        /// Original index within the group.
        index: usize,
    },
    /// The dependency at `index` is alpha-equivalent to the earlier
    /// dependency at `kept`.
    RemoveDuplicate {
        /// Group containing both dependencies.
        group: RewriteGroup,
        /// Original index of the removed copy.
        index: usize,
        /// Original index of the surviving first occurrence.
        kept: usize,
    },
    /// The dependency at `index` is logically implied by the surviving
    /// dependency at `by` (same group, same kind).
    RemoveSubsumed {
        /// Group containing both dependencies.
        group: RewriteGroup,
        /// Original index of the implied dependency.
        index: usize,
        /// Original index of the subsuming dependency.
        by: usize,
    },
    /// The dependency at `index` reads `relation`, which is empty in the
    /// input and unpopulatable by the surviving tgds, so it can never fire.
    RemoveDead {
        /// Group containing the dependency.
        group: RewriteGroup,
        /// Original index within the group.
        index: usize,
        /// Name of the unpopulatable premise relation (the witness).
        relation: String,
    },
}

impl RewriteAction {
    /// The group this action prunes from.
    pub fn group(&self) -> RewriteGroup {
        match self {
            RewriteAction::RemoveTrivialEgd { group, .. }
            | RewriteAction::RemoveDuplicate { group, .. }
            | RewriteAction::RemoveSubsumed { group, .. }
            | RewriteAction::RemoveDead { group, .. } => *group,
        }
    }

    /// The original index of the removed dependency.
    pub fn index(&self) -> usize {
        match self {
            RewriteAction::RemoveTrivialEgd { index, .. }
            | RewriteAction::RemoveDuplicate { index, .. }
            | RewriteAction::RemoveSubsumed { index, .. }
            | RewriteAction::RemoveDead { index, .. } => *index,
        }
    }

    /// Stable action name used in certificates and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            RewriteAction::RemoveTrivialEgd { .. } => "remove-trivial-egd",
            RewriteAction::RemoveDuplicate { .. } => "remove-duplicate",
            RewriteAction::RemoveSubsumed { .. } => "remove-subsumed",
            RewriteAction::RemoveDead { .. } => "remove-dead",
        }
    }
}

/// Dependency counts per group, recorded before and after optimization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCounts {
    /// Σst tgds.
    pub sigma_st: usize,
    /// Σts tgds.
    pub sigma_ts: usize,
    /// Σt dependencies.
    pub sigma_t: usize,
}

impl GroupCounts {
    /// Total dependencies across the three groups.
    pub fn total(&self) -> usize {
        self.sigma_st + self.sigma_ts + self.sigma_t
    }

    fn of(setting: &PdeSetting) -> GroupCounts {
        GroupCounts {
            sigma_st: setting.sigma_st().len(),
            sigma_ts: setting.sigma_ts().len(),
            sigma_t: setting.sigma_t().len(),
        }
    }
}

/// A machine-checkable record of one optimization run over one
/// `(setting, input)` pair. [`verify_rewrite`] replays the derivation and
/// rejects the certificate on any divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteCertificate {
    /// Format version ([`REWRITE_VERSION`]).
    pub version: u32,
    /// Sorted names of the relations nonempty in the input instance — the
    /// seed of the populatability fixpoint, recorded because pass 4 is
    /// input-dependent.
    pub input_nonempty: Vec<String>,
    /// Sorted names of the relations that are empty in the input and
    /// unpopulatable by the surviving tgds.
    pub dead_relations: Vec<String>,
    /// Dependency counts before optimization.
    pub before: GroupCounts,
    /// Dependency counts after optimization.
    pub after: GroupCounts,
    /// The pruning steps, in derivation order.
    pub actions: Vec<RewriteAction>,
}

/// Output of [`optimize_setting`]: the pruned setting plus its
/// certificate.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The setting with all pruned dependencies removed.
    pub optimized: PdeSetting,
    /// The certificate justifying every removal.
    pub certificate: RewriteCertificate,
}

/// Why a rewrite certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// The certificate's version tag is not [`REWRITE_VERSION`].
    Version {
        /// The version found in the certificate.
        found: u32,
    },
    /// The certificate could not be parsed or is structurally invalid.
    Malformed(String),
    /// The certificate's content diverges from the independently replayed
    /// derivation.
    Mismatch(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Version { found } => write!(
                f,
                "unsupported rewrite certificate version {found} (expected {REWRITE_VERSION})"
            ),
            RewriteError::Malformed(m) => write!(f, "malformed rewrite certificate: {m}"),
            RewriteError::Mismatch(m) => write!(f, "rewrite certificate mismatch: {m}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Run all four pruning passes over `setting` with respect to `input`,
/// producing the optimized setting and its certificate.
///
/// The rewrite is sound for the actual `input` only: pass 4 removes
/// dependencies that cannot fire given which relations `input` populates,
/// so a certificate must be re-verified (or optimization re-run) when the
/// input changes.
pub fn optimize_setting(setting: &PdeSetting, input: &Instance) -> OptimizeResult {
    let d = derive(setting, input);
    let optimized = PdeSetting::new(setting.schema().clone(), d.sigma_st, d.sigma_ts, d.sigma_t)
        .expect("removing dependencies from a valid setting keeps it valid");
    OptimizeResult {
        optimized,
        certificate: RewriteCertificate {
            version: REWRITE_VERSION,
            input_nonempty: d.input_nonempty,
            dead_relations: d.dead_relations,
            before: GroupCounts::of(setting),
            after: d.after,
            actions: d.actions,
        },
    }
}

/// Independently revalidate `cert` against `original` and `input`:
/// replay the whole derivation (canonical keys, subsumption chases, the
/// populatability fixpoint) and reject on any divergence — wrong version,
/// a different nonempty-relation seed, a missing or fabricated action, or
/// inconsistent counts.
pub fn verify_rewrite(
    original: &PdeSetting,
    input: &Instance,
    cert: &RewriteCertificate,
) -> Result<(), RewriteError> {
    if cert.version != REWRITE_VERSION {
        return Err(RewriteError::Version {
            found: cert.version,
        });
    }
    let before = GroupCounts::of(original);
    if cert.before != before {
        return Err(RewriteError::Mismatch(format!(
            "certificate records {} original dependencies, setting has {}",
            cert.before.total(),
            before.total()
        )));
    }
    // Structural sanity before the expensive replay: indices in range.
    for a in &cert.actions {
        let len = match a.group() {
            RewriteGroup::SigmaSt => before.sigma_st,
            RewriteGroup::SigmaTs => before.sigma_ts,
            RewriteGroup::SigmaT => before.sigma_t,
        };
        if a.index() >= len {
            return Err(RewriteError::Malformed(format!(
                "action {} index {} out of range for {} (len {})",
                a.kind(),
                a.index(),
                a.group(),
                len
            )));
        }
    }
    let d = derive(original, input);
    if d.input_nonempty != cert.input_nonempty {
        return Err(RewriteError::Mismatch(format!(
            "input-nonempty relations are [{}], certificate records [{}]",
            d.input_nonempty.join(", "),
            cert.input_nonempty.join(", ")
        )));
    }
    if d.dead_relations != cert.dead_relations {
        return Err(RewriteError::Mismatch(format!(
            "dead relations are [{}], certificate records [{}]",
            d.dead_relations.join(", "),
            cert.dead_relations.join(", ")
        )));
    }
    let n = d.actions.len().max(cert.actions.len());
    for i in 0..n {
        match (d.actions.get(i), cert.actions.get(i)) {
            (Some(ours), Some(theirs)) if ours == theirs => {}
            (Some(ours), Some(theirs)) => {
                return Err(RewriteError::Mismatch(format!(
                    "action {i} diverges: derivation finds {ours:?}, certificate records {theirs:?}"
                )));
            }
            (Some(ours), None) => {
                return Err(RewriteError::Mismatch(format!(
                    "certificate omits action {i}: {ours:?}"
                )));
            }
            (None, Some(theirs)) => {
                return Err(RewriteError::Mismatch(format!(
                    "certificate fabricates action {i}: {theirs:?}"
                )));
            }
            (None, None) => unreachable!("loop bound is the max of both lengths"),
        }
    }
    if d.after != cert.after {
        return Err(RewriteError::Mismatch(format!(
            "surviving counts are {}/{}/{}, certificate records {}/{}/{}",
            d.after.sigma_st,
            d.after.sigma_ts,
            d.after.sigma_t,
            cert.after.sigma_st,
            cert.after.sigma_ts,
            cert.after.sigma_t
        )));
    }
    Ok(())
}

/// The full derivation: everything both [`optimize_setting`] and
/// [`verify_rewrite`] need, computed in one deterministic order.
struct Derivation {
    actions: Vec<RewriteAction>,
    input_nonempty: Vec<String>,
    dead_relations: Vec<String>,
    sigma_st: Vec<Tgd>,
    sigma_ts: Vec<Tgd>,
    sigma_t: Vec<Dependency>,
    after: GroupCounts,
}

fn derive(setting: &PdeSetting, input: &Instance) -> Derivation {
    let schema = setting.schema();
    let mut actions = Vec::new();
    // Passes 1–3, per group.
    let mut st = prune_group(
        schema,
        RewriteGroup::SigmaSt,
        setting.sigma_st().iter().cloned().map(Dependency::Tgd),
        &mut actions,
    );
    let mut ts = prune_group(
        schema,
        RewriteGroup::SigmaTs,
        setting.sigma_ts().iter().cloned().map(Dependency::Tgd),
        &mut actions,
    );
    let mut t = prune_group(
        schema,
        RewriteGroup::SigmaT,
        setting.sigma_t().iter().cloned(),
        &mut actions,
    );

    // Pass 4: populatability fixpoint over the survivors, seeded by the
    // relations the input actually populates.
    let seed: BTreeSet<RelId> = schema
        .rel_ids()
        .filter(|&r| !input.relation(r).is_empty())
        .collect();
    let mut populatable = seed.clone();
    loop {
        let mut changed = false;
        let tgds = st
            .iter()
            .chain(ts.iter())
            .chain(t.iter())
            .filter_map(|(_, d)| d.as_tgd());
        for tgd in tgds {
            if tgd
                .premise
                .atoms
                .iter()
                .all(|a| populatable.contains(&a.rel))
            {
                for a in &tgd.conclusion.atoms {
                    changed |= populatable.insert(a.rel);
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (group, survivors) in [
        (RewriteGroup::SigmaSt, &mut st),
        (RewriteGroup::SigmaTs, &mut ts),
        (RewriteGroup::SigmaT, &mut t),
    ] {
        survivors.retain(|(index, dep)| {
            let premise = match dep {
                Dependency::Tgd(t) => &t.premise,
                Dependency::Egd(e) => &e.premise,
            };
            let unpopulatable = premise.atoms.iter().find(|a| !populatable.contains(&a.rel));
            match unpopulatable {
                Some(a) => {
                    actions.push(RewriteAction::RemoveDead {
                        group,
                        index: *index,
                        relation: schema.name(a.rel).as_str(),
                    });
                    false
                }
                None => true,
            }
        });
    }

    let name_of = |r: RelId| schema.name(r).as_str();
    let input_nonempty: Vec<String> = seed.iter().map(|&r| name_of(r)).collect();
    let mut input_nonempty_sorted = input_nonempty;
    input_nonempty_sorted.sort();
    let mut dead_relations: Vec<String> = schema
        .rel_ids()
        .filter(|r| !populatable.contains(r))
        .map(name_of)
        .collect();
    dead_relations.sort();

    let unwrap_tgd = |(_, d): (usize, Dependency)| match d {
        Dependency::Tgd(t) => t,
        Dependency::Egd(_) => unreachable!("Σst/Σts groups contain only tgds"),
    };
    let sigma_st: Vec<Tgd> = st.into_iter().map(unwrap_tgd).collect();
    let sigma_ts: Vec<Tgd> = ts.into_iter().map(unwrap_tgd).collect();
    let sigma_t: Vec<Dependency> = t.into_iter().map(|(_, d)| d).collect();
    let after = GroupCounts {
        sigma_st: sigma_st.len(),
        sigma_ts: sigma_ts.len(),
        sigma_t: sigma_t.len(),
    };
    Derivation {
        actions,
        input_nonempty: input_nonempty_sorted,
        dead_relations,
        sigma_st,
        sigma_ts,
        sigma_t,
        after,
    }
}

/// Passes 1–3 over one group: trivial egds, canonical duplicates, then
/// subsumption against earlier survivors. Returns the survivors paired
/// with their original indices.
fn prune_group(
    schema: &Arc<Schema>,
    group: RewriteGroup,
    deps: impl Iterator<Item = Dependency>,
    actions: &mut Vec<RewriteAction>,
) -> Vec<(usize, Dependency)> {
    let mut survivors: Vec<(usize, Dependency)> = Vec::new();
    let mut first_by_key: HashMap<String, usize> = HashMap::new();
    for (index, dep) in deps.enumerate() {
        // Pass 1: trivial egds.
        if let Dependency::Egd(e) = &dep {
            if e.is_trivial() {
                actions.push(RewriteAction::RemoveTrivialEgd { group, index });
                continue;
            }
        }
        // Pass 2: alpha-equivalent duplicates (first occurrence wins).
        let key = canonical_key(schema, &dep);
        if let Some(&kept) = first_by_key.get(&key) {
            actions.push(RewriteAction::RemoveDuplicate { group, index, kept });
            continue;
        }
        // Pass 3: implication by an earlier survivor of the same kind.
        // Checking only earlier survivors keeps the pass order-stable: a
        // dependency never outlives something it was removed in favor of.
        let implied_by = survivors.iter().find_map(|(j, earlier)| {
            let implied = match (&dep, earlier) {
                (Dependency::Tgd(sub), Dependency::Tgd(by)) => subsumed_by(schema, sub, by),
                (Dependency::Egd(sub), Dependency::Egd(by)) => egd_subsumed_by(schema, sub, by),
                _ => false,
            };
            implied.then_some(*j)
        });
        if let Some(by) = implied_by {
            actions.push(RewriteAction::RemoveSubsumed { group, index, by });
            continue;
        }
        first_by_key.insert(key, index);
        survivors.push((index, dep));
    }
    survivors
}

/// Is `sub` implied by `by`? Conservative one-step check: freeze `sub`'s
/// premise into constants and look for a homomorphism of `by`'s premise
/// into it that maps `by`'s equated pair onto `sub`'s frozen pair (in
/// either orientation). If one exists, any instance satisfying `by` and
/// containing an image of `sub`'s premise already equates `sub`'s pair.
pub(crate) fn egd_subsumed_by(schema: &Arc<Schema>, sub: &Egd, by: &Egd) -> bool {
    let freeze = |v: Var| Some(Value::constant(format!("$opt${v}")));
    let mut frozen = Instance::new(schema.clone());
    for atom in &sub.premise.atoms {
        let Some(values) = atom.ground(&freeze) else {
            return false;
        };
        frozen.insert(atom.rel, Tuple::new(values));
    }
    let lhs = freeze(sub.lhs).expect("freeze is total");
    let rhs = freeze(sub.rhs).expect("freeze is total");
    if lhs == rhs {
        // Trivial egds are removed by pass 1; nothing can subsume them.
        return false;
    }
    for_each_hom_with(
        &by.premise.atoms,
        &frozen,
        &Assignment::new(),
        HomConfig::default(),
        |a| {
            // The equated variables occur in `by`'s premise (validated), so
            // a full homomorphism binds them.
            let l = a.get(by.lhs).expect("egd lhs occurs in its premise");
            let r = a.get(by.rhs).expect("egd rhs occurs in its premise");
            if (l == lhs && r == rhs) || (l == rhs && r == lhs) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    )
    .is_break()
}

/// Alpha-renaming-invariant key: atoms in textual order with variables
/// renamed by first occurrence (premise first, then conclusion / equated
/// pair). Two dependencies share a key iff they are equal up to renaming
/// of variables. Conclusion-only variables are exactly the existentials
/// (validation forbids unbound conclusion variables), so the key needs no
/// separate quantifier encoding. The egd pair is order-normalized so
/// `x = y` and `y = x` collide.
pub(crate) fn canonical_key(schema: &Schema, dep: &Dependency) -> String {
    let mut numbering: HashMap<Var, usize> = HashMap::new();
    let mut canon_atoms = |atoms: &[pde_relational::Atom], out: &mut String| {
        for atom in atoms {
            out.push_str(&schema.name(atom.rel).as_str());
            out.push('(');
            for term in &atom.terms {
                match term {
                    Term::Var(v) => {
                        let next = numbering.len();
                        let id = *numbering.entry(*v).or_insert(next);
                        out.push('?');
                        out.push_str(&id.to_string());
                    }
                    Term::Const(c) => {
                        out.push('!');
                        out.push_str(&c.as_str());
                    }
                }
                out.push(',');
            }
            out.push(')');
        }
    };
    let mut key = String::new();
    match dep {
        Dependency::Tgd(t) => {
            key.push_str("tgd:");
            canon_atoms(&t.premise.atoms, &mut key);
            key.push_str("->");
            canon_atoms(&t.conclusion.atoms, &mut key);
        }
        Dependency::Egd(e) => {
            key.push_str("egd:");
            canon_atoms(&e.premise.atoms, &mut key);
            let num = |v: &Var| numbering.get(v).copied();
            let (a, b) = (num(&e.lhs), num(&e.rhs));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            key.push_str(&format!("={lo:?}~{hi:?}"));
        }
    }
    key
}

impl RewriteCertificate {
    /// Serialize to the certificate JSON format (stable field order).
    pub fn to_json(&self) -> String {
        let names = |xs: &[String]| {
            let inner: Vec<String> = xs.iter().map(|s| json_str(s)).collect();
            format!("[{}]", inner.join(","))
        };
        let counts = |c: &GroupCounts| {
            format!(
                "{{\"sigma_st\":{},\"sigma_ts\":{},\"sigma_t\":{}}}",
                c.sigma_st, c.sigma_ts, c.sigma_t
            )
        };
        let actions: Vec<String> = self
            .actions
            .iter()
            .map(|a| {
                let head = format!(
                    "{{\"action\":{},\"group\":{},\"index\":{}",
                    json_str(a.kind()),
                    json_str(a.group().as_str()),
                    a.index()
                );
                match a {
                    RewriteAction::RemoveTrivialEgd { .. } => format!("{head}}}"),
                    RewriteAction::RemoveDuplicate { kept, .. } => {
                        format!("{head},\"kept\":{kept}}}")
                    }
                    RewriteAction::RemoveSubsumed { by, .. } => format!("{head},\"by\":{by}}}"),
                    RewriteAction::RemoveDead { relation, .. } => {
                        format!("{head},\"relation\":{}}}", json_str(relation))
                    }
                }
            })
            .collect();
        format!(
            concat!(
                "{{\"v\":{},\"kind\":\"pde-rewrite-certificate\",",
                "\"input_nonempty\":{},\"dead_relations\":{},",
                "\"before\":{},\"after\":{},\"actions\":[{}]}}"
            ),
            self.version,
            names(&self.input_nonempty),
            names(&self.dead_relations),
            counts(&self.before),
            counts(&self.after),
            actions.join(",")
        )
    }

    /// Parse a certificate back from [`RewriteCertificate::to_json`]
    /// output.
    pub fn from_json(src: &str) -> Result<RewriteCertificate, RewriteError> {
        use json::ObjExt as _;
        let malformed = RewriteError::Malformed;
        let root = json::parse(src).map_err(malformed)?;
        let m = |e: crate::certificate::CertificateError| RewriteError::Malformed(e.to_string());
        let obj = root.as_obj("certificate").map_err(m)?;
        let kind = obj.get_str("kind").map_err(m)?;
        if kind != "pde-rewrite-certificate" {
            return Err(malformed(format!("unexpected kind '{kind}'")));
        }
        let version = obj.get_num("v").map_err(m)?;
        let version =
            u32::try_from(version).map_err(|_| malformed("version out of range".to_string()))?;
        let strings = |key: &str| -> Result<Vec<String>, RewriteError> {
            root.get_arr(key)
                .map_err(m)?
                .iter()
                .map(|v| match v {
                    json::Json::Str(s) => Ok(s.clone()),
                    _ => Err(malformed(format!("'{key}' entries must be strings"))),
                })
                .collect()
        };
        let counts = |key: &str| -> Result<GroupCounts, RewriteError> {
            let c = obj.field_of(key).map_err(m)?.as_obj(key).map_err(m)?;
            Ok(GroupCounts {
                sigma_st: c.get_num("sigma_st").map_err(m)?,
                sigma_ts: c.get_num("sigma_ts").map_err(m)?,
                sigma_t: c.get_num("sigma_t").map_err(m)?,
            })
        };
        let mut actions = Vec::new();
        for v in root.get_arr("actions").map_err(m)? {
            let a = v.as_obj("action").map_err(m)?;
            let group = RewriteGroup::from_str(&a.get_str("group").map_err(m)?)
                .ok_or_else(|| malformed("unknown group".to_string()))?;
            let index = a.get_num("index").map_err(m)?;
            let action = match a.get_str("action").map_err(m)?.as_str() {
                "remove-trivial-egd" => RewriteAction::RemoveTrivialEgd { group, index },
                "remove-duplicate" => RewriteAction::RemoveDuplicate {
                    group,
                    index,
                    kept: a.get_num("kept").map_err(m)?,
                },
                "remove-subsumed" => RewriteAction::RemoveSubsumed {
                    group,
                    index,
                    by: a.get_num("by").map_err(m)?,
                },
                "remove-dead" => RewriteAction::RemoveDead {
                    group,
                    index,
                    relation: a.get_str("relation").map_err(m)?,
                },
                other => return Err(malformed(format!("unknown action '{other}'"))),
            };
            actions.push(action);
        }
        Ok(RewriteCertificate {
            version,
            input_nonempty: strings("input_nonempty")?,
            dead_relations: strings("dead_relations")?,
            before: counts("before")?,
            after: counts("after")?,
            actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::parse_instance;

    fn setting(st: &str, ts: &str, t: &str) -> PdeSetting {
        PdeSetting::parse("source E/2; source F/2; target H/2; target G/2;", st, ts, t).unwrap()
    }

    fn optimize(p: &PdeSetting, facts: &str) -> OptimizeResult {
        let input = parse_instance(p.schema(), facts).unwrap();
        optimize_setting(p, &input)
    }

    #[test]
    fn clean_setting_is_untouched() {
        let p = setting("E(x, y) -> H(x, y)", "H(x, y) -> E(x, y)", "");
        let out = optimize(&p, "E(a, b). F(a, b).");
        assert!(out.certificate.actions.is_empty());
        assert_eq!(out.certificate.before, out.certificate.after);
        assert_eq!(out.optimized.sigma_st(), p.sigma_st());
        verify_rewrite(
            &p,
            &parse_instance(p.schema(), "E(a, b). F(a, b).").unwrap(),
            &out.certificate,
        )
        .unwrap();
    }

    #[test]
    fn alpha_renamed_duplicate_is_removed() {
        let p = setting("E(x, y) -> H(x, y); E(u, w) -> H(u, w)", "", "");
        let out = optimize(&p, "E(a, b). F(a, b).");
        assert_eq!(
            out.certificate.actions,
            vec![RewriteAction::RemoveDuplicate {
                group: RewriteGroup::SigmaSt,
                index: 1,
                kept: 0
            }]
        );
        assert_eq!(out.optimized.sigma_st().len(), 1);
    }

    #[test]
    fn specialized_tgd_is_subsumed_by_general_one() {
        let p = setting("E(x, y) -> H(x, y); E(x, x) -> H(x, x)", "", "");
        let out = optimize(&p, "E(a, a). F(a, b).");
        assert_eq!(
            out.certificate.actions,
            vec![RewriteAction::RemoveSubsumed {
                group: RewriteGroup::SigmaSt,
                index: 1,
                by: 0
            }]
        );
    }

    #[test]
    fn trivial_and_implied_egds_are_removed() {
        let p = setting(
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> x = x; H(x, y), H(x, z) -> y = z; H(x, y), H(x, z), G(x, x) -> y = z",
        );
        let out = optimize(&p, "E(a, b). G(a, a).");
        assert_eq!(
            out.certificate.actions,
            vec![
                RewriteAction::RemoveTrivialEgd {
                    group: RewriteGroup::SigmaT,
                    index: 0
                },
                RewriteAction::RemoveSubsumed {
                    group: RewriteGroup::SigmaT,
                    index: 2,
                    by: 1
                }
            ]
        );
        assert_eq!(out.optimized.sigma_t().len(), 1);
    }

    #[test]
    fn egd_with_swapped_sides_is_a_duplicate() {
        let p = setting(
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z; H(x, y), H(x, z) -> z = y",
        );
        let out = optimize(&p, "E(a, b).");
        assert_eq!(
            out.certificate.actions,
            vec![RewriteAction::RemoveDuplicate {
                group: RewriteGroup::SigmaT,
                index: 1,
                kept: 0
            }]
        );
    }

    #[test]
    fn dead_dependency_depends_on_the_input() {
        let p = setting("E(x, y) -> H(x, y); F(x, y) -> G(x, y)", "", "");
        // F empty: the second tgd can never fire.
        let out = optimize(&p, "E(a, b).");
        assert_eq!(
            out.certificate.actions,
            vec![RewriteAction::RemoveDead {
                group: RewriteGroup::SigmaSt,
                index: 1,
                relation: "F".to_string()
            }]
        );
        assert_eq!(out.certificate.dead_relations, vec!["F", "G"]);
        // F populated: everything is live.
        let out = optimize(&p, "E(a, b). F(c, d).");
        assert!(out.certificate.actions.is_empty());
    }

    #[test]
    fn populatability_chains_through_target_tgds() {
        let p = setting(
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> G(y, x); G(x, y), H(x, x) -> x = y",
        );
        let out = optimize(&p, "E(a, b).");
        // G is populatable via H, so the egd over G stays. F (empty, never
        // concluded) is dead but unread, so no dependency is removed.
        assert!(out.certificate.actions.is_empty());
        assert_eq!(out.certificate.dead_relations, vec!["F"]);
    }

    #[test]
    fn certificate_json_roundtrip_is_lossless() {
        let p = setting(
            "E(x, y) -> H(x, y); E(u, w) -> H(u, w); F(x, y) -> G(x, y)",
            "",
            "H(x, y) -> x = x",
        );
        let out = optimize(&p, "E(a, b).");
        assert!(out.certificate.actions.len() >= 3);
        let back = RewriteCertificate::from_json(&out.certificate.to_json()).unwrap();
        assert_eq!(back, out.certificate);
    }

    #[test]
    fn verifier_accepts_own_output_and_rejects_tampering() {
        let p = setting("E(x, y) -> H(x, y); E(u, w) -> H(u, w)", "", "");
        let input = parse_instance(p.schema(), "E(a, b). F(a, b).").unwrap();
        let out = optimize_setting(&p, &input);
        verify_rewrite(&p, &input, &out.certificate).unwrap();

        let mut wrong_version = out.certificate.clone();
        wrong_version.version = REWRITE_VERSION + 1;
        assert!(matches!(
            verify_rewrite(&p, &input, &wrong_version),
            Err(RewriteError::Version { .. })
        ));

        let mut dropped = out.certificate.clone();
        dropped.actions.clear();
        assert!(matches!(
            verify_rewrite(&p, &input, &dropped),
            Err(RewriteError::Mismatch(_))
        ));

        let mut fabricated = out.certificate.clone();
        fabricated.actions.push(RewriteAction::RemoveSubsumed {
            group: RewriteGroup::SigmaSt,
            index: 0,
            by: 1,
        });
        assert!(matches!(
            verify_rewrite(&p, &input, &fabricated),
            Err(RewriteError::Mismatch(_))
        ));

        let mut out_of_range = out.certificate.clone();
        out_of_range.actions[0] = RewriteAction::RemoveDuplicate {
            group: RewriteGroup::SigmaSt,
            index: 99,
            kept: 0,
        };
        assert!(matches!(
            verify_rewrite(&p, &input, &out_of_range),
            Err(RewriteError::Malformed(_))
        ));

        let mut wrong_input = out.certificate.clone();
        wrong_input.input_nonempty = vec!["G".to_string()];
        assert!(matches!(
            verify_rewrite(&p, &input, &wrong_input),
            Err(RewriteError::Mismatch(_))
        ));
    }

    #[test]
    fn optimized_setting_stays_valid_and_smaller() {
        let p = setting(
            "E(x, y) -> H(x, y); E(u, w) -> H(u, w); E(x, x) -> H(x, x)",
            "H(x, y) -> E(x, y)",
            "H(x, y), H(x, z) -> y = z; H(a, b), H(a, c) -> b = c",
        );
        let out = optimize(&p, "E(a, b).");
        assert_eq!(out.certificate.before.total(), 6);
        assert_eq!(out.certificate.after.total(), 3);
        assert_eq!(out.optimized.sigma_st().len(), 1);
        assert_eq!(out.optimized.sigma_ts().len(), 1);
        assert_eq!(out.optimized.sigma_t().len(), 1);
    }
}
