//! The planner: derive a static complexity [`Certificate`] from a
//! `PdeSetting` alone.
//!
//! The planner runs the library analyses once — position ranks over the
//! dependency graph of Σst ∪ Σt (Def. 5), the Lemma 1 chase bound, the
//! Def. 8 marking, and the Def. 9 `C_tract` classifier — and packages the
//! results with witnesses into a certificate. The certificate then powers
//! `pde_core::decide_with_plan` (no per-call re-classification, budgets
//! replacing hard-coded limits) and can be saved as JSON and re-verified
//! later by [`crate::certificate::verify_certificate`], whose independent
//! re-derivations deliberately do *not* share the code paths used here.

use crate::certificate::{
    bound_degree, bound_params, derive_budgets, derive_regime, forward_tgds, predicted_classes,
    recommended_solver, Certificate, ChaseCertificate, CycleEdge, PositionRef, RankEntry,
    TractCertificate, TractCounterexample, CERTIFICATE_VERSION,
};
use pde_constraints::{chase_bound, classify, CtractViolation, DependencyGraph, Marking};
use pde_core::PdeSetting;

/// Build the certificate for `setting`, with concrete chase bounds
/// evaluated at an active domain of `adom_size` values.
pub fn plan_setting(setting: &PdeSetting, adom_size: usize) -> Certificate {
    let schema = setting.schema();
    let forward = forward_tgds(setting);
    let graph = DependencyGraph::new(schema, &forward);
    let termination = crate::termination::analyze_tgds(schema, &forward, adom_size);

    let chase = match graph.ranks() {
        Some(rank_map) => {
            let ranks: Vec<RankEntry> = schema
                .positions()
                .map(|p| RankEntry {
                    pos: PositionRef::of(schema, p),
                    rank: rank_map[&p],
                })
                .collect();
            let max_rank = ranks.iter().map(|r| r.rank).max().unwrap_or(0);
            let bound = chase_bound(schema, &forward, adom_size)
                .expect("ranks exist, so the set is weakly acyclic and has a bound");
            ChaseCertificate {
                weakly_acyclic: true,
                ranks,
                max_rank,
                degree: bound_degree(bound_params(schema, &forward), max_rank),
                adom_size,
                value_bound: bound.value_bound,
                fact_bound: bound.fact_bound,
                step_bound: bound.step_bound,
                special_cycle: Vec::new(),
                termination: termination.clone(),
            }
        }
        None => {
            let cycle = graph
                .find_special_cycle()
                .expect("no ranks, so a special cycle exists");
            ChaseCertificate {
                weakly_acyclic: false,
                ranks: Vec::new(),
                max_rank: 0,
                degree: 0,
                adom_size,
                value_bound: 0,
                fact_bound: 0,
                step_bound: 0,
                special_cycle: cycle
                    .into_iter()
                    .map(|e| CycleEdge {
                        from: PositionRef::of(schema, e.from),
                        to: PositionRef::of(schema, e.to),
                        special: e.special,
                    })
                    .collect(),
                termination: termination.clone(),
            }
        }
    };

    let report = classify(schema, setting.sigma_st(), setting.sigma_ts());
    let marking = Marking::of_st_tgds(setting.sigma_st());
    let marked_positions: Vec<PositionRef> = schema
        .positions()
        .filter(|p| marking.is_marked(*p))
        .map(|p| PositionRef::of(schema, p))
        .collect();
    let marked_variables: Vec<Vec<String>> = setting
        .sigma_ts()
        .iter()
        .map(|d| {
            marking
                .marked_variables(d)
                .iter()
                .map(ToString::to_string)
                .collect()
        })
        .collect();
    let counterexample = if report.in_ctract() {
        None
    } else if let Some(CtractViolation::RepeatedMarkedVariable { tgd_index, var, .. }) =
        report.condition1.first()
    {
        Some(TractCounterexample {
            kind: "repeated-marked-variable".into(),
            tgd_index: *tgd_index,
            vars: vec![var.to_string()],
        })
    } else {
        // Condition 1 holds, so being outside C_tract means both 2.1 and
        // 2.2 fail; a bad marked pair is the informative witness (a
        // multi-literal LHS alone never excludes membership).
        report.condition2_2.iter().find_map(|v| match v {
            CtractViolation::BadMarkedPair { tgd_index, x, y } => Some(TractCounterexample {
                kind: "bad-marked-pair".into(),
                tgd_index: *tgd_index,
                vars: vec![x.to_string(), y.to_string()],
            }),
            _ => None,
        })
    };
    let tract = TractCertificate {
        marked_positions,
        marked_variables,
        condition1: report.holds1(),
        condition2_1: report.holds2_1(),
        condition2_2: report.holds2_2(),
        st_all_full: report.st_all_full,
        ts_all_lav: report.ts_all_lav,
        in_ctract: report.in_ctract(),
        counterexample,
    };

    let regime = derive_regime(setting, &chase.termination);
    let (sol_complexity, certain_complexity) = predicted_classes(regime);
    let budgets = derive_budgets(&chase);
    Certificate {
        version: CERTIFICATE_VERSION,
        regime,
        sol_complexity,
        certain_complexity,
        recommended_solver: recommended_solver(regime),
        chase,
        tract,
        budgets,
    }
}

/// Human-readable rendering of a certificate (the `pde plan` text format).
pub fn render_certificate_text(cert: &Certificate) -> String {
    let mut out = String::new();
    out.push_str(&format!("regime: {}\n", cert.regime));
    out.push_str(&format!(
        "complexity: SOL(P) {}; certain answers {}\n",
        cert.sol_complexity, cert.certain_complexity
    ));
    out.push_str(&format!("solver: {}\n", cert.recommended_solver));
    let c = &cert.chase;
    if c.weakly_acyclic {
        out.push_str(&format!(
            "chase: weakly acyclic; max rank {}; N(|I|) degree {}\n",
            c.max_rank, c.degree
        ));
        out.push_str(&format!(
            "chase bound at |adom| = {}: values {}, facts {}, steps {}\n",
            c.adom_size, c.value_bound, c.fact_bound, c.step_bound
        ));
        for r in &c.ranks {
            if r.rank > 0 {
                out.push_str(&format!(
                    "  rank {}: {}.{}\n",
                    r.rank, r.pos.rel, r.pos.attr
                ));
            }
        }
    } else {
        out.push_str("chase: NOT weakly acyclic; no Lemma 1 bound. Special cycle:\n");
        for e in &c.special_cycle {
            out.push_str(&format!(
                "  {}.{} -> {}.{}{}\n",
                e.from.rel,
                e.from.attr,
                e.to.rel,
                e.to.attr,
                if e.special { " (special)" } else { "" }
            ));
        }
    }
    out.push_str(&crate::termination::render_termination_text(&c.termination));
    let t = &cert.tract;
    out.push_str(&format!(
        "C_tract: {} (condition 1: {}, 2.1: {}, 2.2: {}; st all full: {}, ts all LAV: {})\n",
        if t.in_ctract { "in" } else { "out" },
        yn(t.condition1),
        yn(t.condition2_1),
        yn(t.condition2_2),
        yn(t.st_all_full),
        yn(t.ts_all_lav)
    ));
    if !t.marked_positions.is_empty() {
        let list: Vec<String> = t
            .marked_positions
            .iter()
            .map(|p| format!("{}.{}", p.rel, p.attr))
            .collect();
        out.push_str(&format!("marked positions: {}\n", list.join(", ")));
    }
    if let Some(cx) = &t.counterexample {
        out.push_str(&format!(
            "counterexample: ts-tgd #{} {} ({})\n",
            cx.tgd_index,
            cx.kind,
            cx.vars.join(", ")
        ));
    }
    let b = &cert.budgets;
    out.push_str(&format!(
        "budgets: chase steps {}, chase facts {}, search nodes {}, search branches {}\n",
        b.chase_steps, b.chase_facts, b.search_nodes, b.search_branches
    ));
    out
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{verify_certificate, CertificateError, Regime};
    use pde_core::SolverKind;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    fn clique_like() -> PdeSetting {
        PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
            "",
        )
        .unwrap()
    }

    fn non_terminating() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "H(x, y) -> exists z . H(y, z)",
        )
        .unwrap()
    }

    #[test]
    fn planner_output_verifies() {
        for (setting, adom) in [(example1(), 4), (clique_like(), 7), (non_terminating(), 3)] {
            let cert = plan_setting(&setting, adom);
            verify_certificate(&setting, &cert).expect("planner output must verify");
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        for setting in [example1(), clique_like(), non_terminating()] {
            let cert = plan_setting(&setting, 5);
            let back = Certificate::from_json(&cert.to_json()).unwrap();
            assert_eq!(back, cert);
            verify_certificate(&setting, &back).unwrap();
        }
    }

    #[test]
    fn mutated_rank_is_rejected() {
        let setting = example1();
        let mut cert = plan_setting(&setting, 4);
        cert.chase.ranks[0].rank += 1;
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Rank(_))
        ));
    }

    #[test]
    fn mutated_marking_is_rejected() {
        let setting = clique_like();
        let mut cert = plan_setting(&setting, 4);
        cert.tract.marked_positions.pop();
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Marking(_))
        ));
    }

    #[test]
    fn mutated_flag_is_rejected() {
        let setting = clique_like();
        let mut cert = plan_setting(&setting, 4);
        cert.tract.in_ctract = true;
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Ctract(_))
        ));
    }

    #[test]
    fn mutated_budget_is_rejected() {
        let setting = example1();
        let mut cert = plan_setting(&setting, 4);
        cert.budgets.search_nodes += 1;
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Budget(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let setting = example1();
        let mut cert = plan_setting(&setting, 4);
        cert.version = CERTIFICATE_VERSION + 1;
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Version(_))
        ));
    }

    #[test]
    fn tampered_cycle_witness_is_rejected() {
        let setting = non_terminating();
        let mut cert = plan_setting(&setting, 3);
        assert_eq!(cert.regime, Regime::NonTerminating);
        for e in &mut cert.chase.special_cycle {
            e.special = false;
        }
        assert!(matches!(
            verify_certificate(&setting, &cert),
            Err(CertificateError::Rank(_))
        ));
    }

    #[test]
    fn counterexample_is_named_and_checked() {
        let cert = plan_setting(&clique_like(), 4);
        let cx = cert.tract.counterexample.as_ref().expect("outside C_tract");
        assert_eq!(cx.kind, "bad-marked-pair");
        assert_eq!(cx.tgd_index, 1);
        // Pointing the witness at the wrong tgd must be caught.
        let mut bad = cert.clone();
        bad.tract.counterexample.as_mut().unwrap().tgd_index = 0;
        assert!(matches!(
            verify_certificate(&clique_like(), &bad),
            Err(CertificateError::Ctract(_))
        ));
    }

    #[test]
    fn routing_matches_the_solver_facade() {
        for setting in [example1(), clique_like(), non_terminating()] {
            let cert = plan_setting(&setting, 4);
            let plan = cert.to_solve_plan();
            assert_eq!(plan.kind, pde_core::SolvePlan::for_setting(&setting).kind);
        }
    }

    #[test]
    fn data_exchange_and_tractable_regimes() {
        let de =
            PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let cert = plan_setting(&de, 4);
        assert_eq!(cert.regime, Regime::DataExchange);
        assert_eq!(cert.recommended_solver, SolverKind::DataExchange);
        verify_certificate(&de, &cert).unwrap();

        let cert = plan_setting(&example1(), 4);
        assert_eq!(cert.regime, Regime::Tractable);
        assert_eq!(cert.recommended_solver, SolverKind::Tractable);
    }

    #[test]
    fn text_rendering_mentions_the_essentials() {
        let cert = plan_setting(&example1(), 4);
        let text = render_certificate_text(&cert);
        assert!(text.contains("regime: tractable"));
        assert!(text.contains("C_tract: in"));
        assert!(text.contains("budgets:"));
    }

    #[test]
    fn governor_config_derives_memory_budget_from_fact_bound() {
        use crate::certificate::{GOVERNOR_BYTES_PER_FACT, GOVERNOR_SLACK_BYTES};
        let cert = plan_setting(&example1(), 4);
        assert!(cert.chase.weakly_acyclic);
        let cfg = cert.derived_governor_config();
        assert_eq!(
            cfg.memory_budget_bytes,
            Some(cert.chase.fact_bound * GOVERNOR_BYTES_PER_FACT + GOVERNOR_SLACK_BYTES)
        );
        // Static derivation never sets operator policy.
        assert!(cfg.deadline.is_none());
        assert!(cfg.cancel.is_none());
    }

    #[test]
    fn governor_config_is_unbounded_without_weak_acyclicity() {
        let cert = plan_setting(&non_terminating(), 3);
        assert!(!cert.chase.weakly_acyclic);
        assert_eq!(cert.derived_governor_config().memory_budget_bytes, None);
    }

    #[test]
    fn derived_budget_admits_the_actual_chase_result() {
        // A governed run under the plan-derived memory budget must decide,
        // not stop: the budget is calibrated to dominate any instance the
        // certified chase can reach.
        use pde_runtime::Governor;
        let setting = example1();
        let input =
            pde_relational::parse_instance(setting.schema(), "E(a, a). E(a, b). E(b, a).").unwrap();
        let cert = plan_setting(&setting, input.active_domain().len());
        let governor = Governor::new(cert.derived_governor_config());
        let report =
            pde_core::decide_governed(&setting, &input, &cert.to_solve_plan(), &governor).unwrap();
        assert!(report.undecided.is_none(), "{:?}", report.undecided);
        // E(b, b) is missing, so the forced H(b, b) has no Σts backing: a
        // definite "no", reached without tripping the derived budget.
        assert_eq!(report.exists, Some(false));
    }
}
