//! Text and JSON rendering of diagnostics.
//!
//! Both renderers are pure functions of the diagnostic list plus an
//! optional [`RenderContext`] that maps section-relative spans back to
//! file positions (via each section's line map, since comments and blank
//! lines are dropped when a bundle is split).

use crate::diag::{Diagnostic, Group, Severity};
use pde_core::bundle::{BundleSources, Section};

/// Where the linted text came from, for position reporting.
pub struct RenderContext<'a> {
    /// Path (or label) of the bundle file.
    pub path: &'a str,
    /// The split sections, carrying line maps.
    pub sources: &'a BundleSources,
}

impl RenderContext<'_> {
    fn section(&self, group: Group) -> &Section {
        match group {
            Group::St => &self.sources.st,
            Group::Ts => &self.sources.ts,
            Group::T => &self.sources.t,
        }
    }

    /// Resolve a diagnostic's span to `(file_line, col, snippet)`.
    fn locate(&self, d: &Diagnostic) -> Option<(usize, usize, String)> {
        let c = d.constraint?;
        let span = d.span?;
        let section = self.section(c.group);
        let (line, col) = section.file_line_col(span.start);
        let snippet = span.slice(&section.text).trim().to_owned();
        Some((line, col, snippet))
    }
}

/// Render diagnostics in the compiler-style text format.
pub fn render_text(diags: &[Diagnostic], ctx: Option<&RenderContext<'_>>) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        if let Some(c) = d.constraint {
            out.push_str(&format!("  --> {} #{}", c.group, c.index));
            if let Some((line, col, _)) = ctx.and_then(|ctx| ctx.locate(d)) {
                out.push_str(&format!(" ({}:{line}:{col})", ctx.expect("checked").path));
            }
            out.push('\n');
            if let Some((_, _, snippet)) = ctx.and_then(|ctx| ctx.locate(d)) {
                if !snippet.is_empty() {
                    out.push_str(&format!("   | {snippet}\n"));
                }
            }
        }
        for note in &d.notes {
            out.push_str(&format!("   = note: {note}\n"));
        }
        if let Some(s) = &d.suggestion {
            out.push_str(&format!("   = help: {s}\n"));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    out.push_str(&format!(
        "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
    ));
    out
}

/// Render diagnostics as a JSON object (`{"diagnostics": [...], "counts":
/// {...}}`). Hand-rolled: the workspace deliberately has no serialization
/// dependency.
pub fn render_json(diags: &[Diagnostic], ctx: Option<&RenderContext<'_>>) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"message\":{}",
            json_str(d.code.as_str()),
            json_str(&d.severity.to_string()),
            json_str(&d.message)
        ));
        if let Some(c) = d.constraint {
            out.push_str(&format!(
                ",\"group\":{},\"index\":{}",
                json_str(c.group.section_name()),
                c.index
            ));
        }
        if let Some(span) = d.span {
            out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{}}}",
                span.start, span.end
            ));
        }
        if let Some((line, col, _)) = ctx.and_then(|ctx| ctx.locate(d)) {
            out.push_str(&format!(",\"line\":{line},\"col\":{col}"));
        }
        if !d.notes.is_empty() {
            out.push_str(",\"notes\":[");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(n));
            }
            out.push(']');
        }
        if let Some(s) = &d.suggestion {
            out.push_str(&format!(",\"suggestion\":{}", json_str(s)));
        }
        out.push('}');
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    out.push_str(&format!(
        "],\"counts\":{{\"error\":{},\"warning\":{},\"note\":{}}}}}",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Note)
    ));
    out
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalysisInput;
    use crate::diag::{Code, Diagnostic};
    use pde_core::bundle::split_sections;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("Σt"), "\"Σt\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn text_rendering_includes_position_and_snippet() {
        let src = "%schema\nsource E/2; target H/2\n%st\nE(x, y) -> H(x, y)\n%ts\n%t\n# comment\nH(x, y) -> exists z . H(y, z)\n";
        let sources = split_sections(src).unwrap();
        let diags = AnalysisInput::from_sources(&sources).unwrap().analyze();
        let ctx = RenderContext {
            path: "ex.pde",
            sources: &sources,
        };
        let text = render_text(&diags, Some(&ctx));
        assert!(text.contains("error[PDE001]"), "{text}");
        assert!(text.contains("witness cycle"), "{text}");
        // PDE018 on the Σt tgd points at file line 8 (the comment on line
        // 7 is skipped by the section splitter).
        assert!(text.contains("ex.pde:8:1"), "{text}");
        assert!(text.contains("| H(x, y) -> exists z . H(y, z)"), "{text}");
        // PDE001 plus its PDE052 criterion-trail companion.
        assert!(text.contains("error[PDE052]"), "{text}");
        assert!(text.contains("2 error(s)"), "{text}");
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let src =
            "%schema\nsource E/2; target H/2\n%st\nE(x, y) -> H(x, y)\n%ts\n%t\nH(x, y) -> x = x\n";
        let sources = split_sections(src).unwrap();
        let diags = AnalysisInput::from_sources(&sources).unwrap().analyze();
        let ctx = RenderContext {
            path: "ex.pde",
            sources: &sources,
        };
        let json = render_json(&diags, Some(&ctx));
        assert!(json.starts_with("{\"diagnostics\":["), "{json}");
        assert!(json.contains("\"code\":\"PDE019\""), "{json}");
        assert!(json.contains("\"group\":\"t\""), "{json}");
        assert!(json.contains("\"line\":7"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the workspace).
        let bal = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
    }

    #[test]
    fn rendering_without_context_omits_positions() {
        let d = vec![Diagnostic::new(Code::TrivialEgd, "t").on(crate::diag::Group::T, 0)];
        let text = render_text(&d, None);
        assert!(text.contains("--> Σt #0\n"), "{text}");
        let json = render_json(&d, None);
        assert!(!json.contains("\"line\""), "{json}");
    }
}
