//! Diagnostic vocabulary: stable codes, severities, and the [`Diagnostic`]
//! record every lint pass produces.
//!
//! Codes are grouped by theme and never renumbered:
//!
//! * `PDE00x` — complexity-boundary lints (weak acyclicity, `C_tract`, the
//!   §4 intractability boundaries);
//! * `PDE01x` — well-formedness of individual dependencies;
//! * `PDE02x` — redundancy (duplicates, subsumption);
//! * `PDE03x` — reachability over the schema (unpopulatable / unused
//!   relations);
//! * `PDE04x` — optimizer findings: redundancy the `PDE02x` syntactic
//!   lints miss but the rewrite passes of [`crate::rewrite`] would remove
//!   (egd subsumption, alpha-renamed duplicates, premise-aware dead
//!   relations);
//! * `PDE05x` — chase-termination hierarchy findings from
//!   [`crate::termination`] (certified beyond weak acyclicity, loose
//!   critical-instance bounds, all criteria failing).

use pde_relational::Span;
use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered: `Note < Warning < Error`. Notes are purely informational and
/// never affect exit codes, even under `--deny warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never denies.
    Note,
    /// Suspicious but not definitely wrong; denies under `--deny warnings`.
    Warning,
    /// Definitely wrong or outside every tractability guarantee; denies by
    /// default.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which constraint group a diagnostic points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Group {
    /// Σst, the source-to-target tgds.
    St,
    /// Σts, the target-to-source tgds.
    Ts,
    /// Σt, the target constraints (tgds and egds).
    T,
}

impl Group {
    /// The bundle section marker for this group.
    pub fn section_name(&self) -> &'static str {
        match self {
            Group::St => "st",
            Group::Ts => "ts",
            Group::T => "t",
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Group::St => write!(f, "Σst"),
            Group::Ts => write!(f, "Σts"),
            Group::T => write!(f, "Σt"),
        }
    }
}

/// A reference to one dependency within the setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintRef {
    /// The constraint group.
    pub group: Group,
    /// 0-based index within the group.
    pub index: usize,
}

/// Stable lint codes. The numeric part is permanent; see `docs/LINTS.md`
/// for the catalog with examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// PDE001: Σt's tgds are not weakly acyclic.
    WeakAcyclicityViolation,
    /// PDE002: the setting falls outside `C_tract` (Def. 9).
    OutsideCtract,
    /// PDE003: a target egd alongside a nonempty Σts (§4 boundary).
    TargetEgdBoundary,
    /// PDE004: a full target tgd alongside a nonempty Σts (§4 boundary).
    FullTargetTgdBoundary,
    /// PDE005: a genuinely disjunctive ts-tgd (§4 boundary).
    DisjunctiveTsBoundary,
    /// PDE010: a conclusion variable is neither universal nor existential.
    UnboundConclusionVar,
    /// PDE011: a declared existential also occurs in the premise.
    ExistentialInPremise,
    /// PDE012: a declared existential does not occur in the conclusion.
    UnusedExistential,
    /// PDE013: a relation of the wrong peer for the group's orientation.
    WrongPeer,
    /// PDE014: empty premise.
    EmptyPremise,
    /// PDE015: empty conclusion.
    EmptyConclusion,
    /// PDE016: an egd equates a variable missing from its premise.
    EgdVarNotInPremise,
    /// PDE017: an atom's term count differs from its relation's arity.
    ArityMismatch,
    /// PDE018: a universal variable used once and never constrained.
    WildcardUniversal,
    /// PDE019: an egd that equates a variable with itself.
    TrivialEgd,
    /// PDE020: an exact duplicate of an earlier dependency in its group.
    DuplicateDependency,
    /// PDE021: a tgd implied by another tgd in the same group.
    SubsumedTgd,
    /// PDE030: a target relation read by a premise that no tgd populates.
    UnpopulatedTargetRelation,
    /// PDE031: a relation mentioned by no dependency at all.
    UnusedRelation,
    /// PDE040: an egd implied by another egd in Σt (the egd analogue of
    /// `PDE021`).
    SubsumedEgd,
    /// PDE041: a dependency identical to an earlier one up to variable
    /// renaming (the alpha-equivalence analogue of `PDE020`).
    AlphaDuplicateDependency,
    /// PDE042: a relation no chase derivation can ever populate once
    /// premises are taken into account (where `PDE030` is silent).
    DeadRelation,
    /// PDE050: Σt is not weakly acyclic, but a stronger criterion of the
    /// termination hierarchy certifies chase termination.
    TerminatesBeyondWeakAcyclicity,
    /// PDE051: termination is certified only by the critical-instance
    /// check, whose derived bound may be loose.
    CriticalInstanceOnly,
    /// PDE052: every criterion of the termination hierarchy fails; the
    /// chase may diverge.
    AllTerminationCriteriaFail,
}

impl Code {
    /// The stable code string, e.g. `"PDE001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::WeakAcyclicityViolation => "PDE001",
            Code::OutsideCtract => "PDE002",
            Code::TargetEgdBoundary => "PDE003",
            Code::FullTargetTgdBoundary => "PDE004",
            Code::DisjunctiveTsBoundary => "PDE005",
            Code::UnboundConclusionVar => "PDE010",
            Code::ExistentialInPremise => "PDE011",
            Code::UnusedExistential => "PDE012",
            Code::WrongPeer => "PDE013",
            Code::EmptyPremise => "PDE014",
            Code::EmptyConclusion => "PDE015",
            Code::EgdVarNotInPremise => "PDE016",
            Code::ArityMismatch => "PDE017",
            Code::WildcardUniversal => "PDE018",
            Code::TrivialEgd => "PDE019",
            Code::DuplicateDependency => "PDE020",
            Code::SubsumedTgd => "PDE021",
            Code::UnpopulatedTargetRelation => "PDE030",
            Code::UnusedRelation => "PDE031",
            Code::SubsumedEgd => "PDE040",
            Code::AlphaDuplicateDependency => "PDE041",
            Code::DeadRelation => "PDE042",
            Code::TerminatesBeyondWeakAcyclicity => "PDE050",
            Code::CriticalInstanceOnly => "PDE051",
            Code::AllTerminationCriteriaFail => "PDE052",
        }
    }

    /// The severity this code carries.
    pub fn severity(&self) -> Severity {
        match self {
            Code::WeakAcyclicityViolation
            | Code::UnboundConclusionVar
            | Code::ExistentialInPremise
            | Code::UnusedExistential
            | Code::WrongPeer
            | Code::EmptyPremise
            | Code::EmptyConclusion
            | Code::EgdVarNotInPremise
            | Code::ArityMismatch
            | Code::AllTerminationCriteriaFail => Severity::Error,
            Code::OutsideCtract
            | Code::TargetEgdBoundary
            | Code::FullTargetTgdBoundary
            | Code::DisjunctiveTsBoundary
            | Code::TrivialEgd
            | Code::DuplicateDependency
            | Code::SubsumedTgd
            | Code::UnpopulatedTargetRelation
            | Code::SubsumedEgd
            | Code::AlphaDuplicateDependency
            | Code::DeadRelation
            | Code::CriticalInstanceOnly => Severity::Warning,
            Code::WildcardUniversal
            | Code::UnusedRelation
            | Code::TerminatesBeyondWeakAcyclicity => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always `code.severity()` today; stored so a future
    /// per-code override can't change renderers).
    pub severity: Severity,
    /// Human-readable, single-sentence message.
    pub message: String,
    /// The dependency this is about, when it is about exactly one.
    pub constraint: Option<ConstraintRef>,
    /// Byte span within the dependency's bundle section, when the input
    /// came from text.
    pub span: Option<Span>,
    /// Supplementary lines (witnesses, cross-references).
    pub notes: Vec<String>,
    /// A concrete way to fix or silence the finding.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic with the code's default severity and no
    /// location, notes, or suggestion.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            constraint: None,
            span: None,
            notes: Vec::new(),
            suggestion: None,
        }
    }

    /// Attach a constraint reference.
    pub fn on(mut self, group: Group, index: usize) -> Diagnostic {
        self.constraint = Some(ConstraintRef { group, index });
        self
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Append a note line.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach a suggestion.
    pub fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }
}

/// Does `diags` contain anything at or above `deny`? (The exit-code
/// question. Notes never count.)
pub fn any_denied(diags: &[Diagnostic], deny: Severity) -> bool {
    let floor = deny.max(Severity::Warning);
    diags.iter().any(|d| d.severity >= floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::WeakAcyclicityViolation.as_str(), "PDE001");
        assert_eq!(Code::EgdVarNotInPremise.as_str(), "PDE016");
        assert_eq!(Code::SubsumedTgd.as_str(), "PDE021");
        assert_eq!(Code::UnusedRelation.as_str(), "PDE031");
    }

    #[test]
    fn notes_never_deny() {
        let d = vec![Diagnostic::new(Code::WildcardUniversal, "x")];
        assert!(!any_denied(&d, Severity::Note));
        assert!(!any_denied(&d, Severity::Warning));
        let w = vec![Diagnostic::new(Code::TrivialEgd, "x")];
        assert!(!any_denied(&w, Severity::Error));
        assert!(any_denied(&w, Severity::Warning));
        let e = vec![Diagnostic::new(Code::EmptyPremise, "x")];
        assert!(any_denied(&e, Severity::Error));
    }
}
