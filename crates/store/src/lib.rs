//! Crash-safe durable instance store for peer data exchange.
//!
//! `pde-store` persists a [`pde_relational::Instance`] across process
//! restarts and crashes with two artifacts in one directory:
//!
//! * **Snapshot** (`base.pdes`) — the full columnar instance (PR 8
//!   structure-of-arrays layout) written atomically via temp-file +
//!   `fsync` + rename, carrying a symbol dictionary so constants survive
//!   interner re-ordering, per-row insertion epochs so delta windows
//!   survive a restart, and a trailing FNV-1a checksum.
//! * **Journal** (`base.pdej`) — an append-only log of commit batches
//!   (insert/retract/merge ops), each framed with a length prefix and an
//!   FNV-1a checksum and `fdatasync`ed before the commit returns.
//!
//! [`InstanceStore::open`] recovers by loading the last good snapshot,
//! replaying the journal's good frame prefix, and truncating the file at
//! the first torn or corrupt frame. The guarantee the crash-recovery
//! property matrix (the frame and [`journal`] unit suites, and the `store_recovery`
//! integration tests) proves: **a crash at any journal byte boundary never
//! yields a wrong answer after recovery — only a rewind to the last
//! durable epoch.** `pde serve` builds its request loop on top of this
//! store.

mod frame;
pub mod journal;
pub mod snapshot;
mod store;

pub use frame::{append_frame, fnv1a, read_frame, DecodeError, FrameRead, FRAME_HEADER_BYTES};
pub use journal::{
    append_batch, decode_batch, encode_batch, scan_journal, JournalScan, Op, JOURNAL_MAGIC,
};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotError, SNAPSHOT_MAGIC};
pub use store::{
    InstanceStore, RecoveryReport, StoreError, JOURNAL_FILE, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE,
};

#[cfg(feature = "fault-injection")]
pub use store::StoreFaultPlan;
