//! The durable instance store: snapshot + journal under one directory.
//!
//! An [`InstanceStore`] owns a directory holding two files — `base.pdes`,
//! the last checkpointed columnar snapshot (written atomically via
//! temp-file + rename), and `base.pdej`, the append-only epoch journal of
//! everything committed since. [`InstanceStore::open`] performs recovery:
//! load the snapshot (or start empty), replay the journal's good frame
//! prefix on top (skipping frames the snapshot already folds in), truncate
//! the file at the first torn or corrupt frame, and report the recovered
//! epoch. The invariant the crash-recovery property matrix proves: **a
//! crash at any journal byte boundary never yields a wrong answer after
//! recovery — only a rewind to the last durable epoch.**

use crate::frame::append_frame;
use crate::journal::{encode_batch, scan_journal, Op, JOURNAL_MAGIC};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotError};
use pde_relational::{Instance, Schema, Tuple, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "base.pdes";
/// Temp file the checkpoint protocol writes before the atomic rename.
pub const SNAPSHOT_TMP_FILE: &str = "base.pdes.tmp";
/// Journal file name inside a store directory.
pub const JOURNAL_FILE: &str = "base.pdej";

/// A failure of the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with the operation that hit it.
    Io {
        /// What the store was doing (e.g. `"append journal frame"`).
        op: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The snapshot file is corrupt or describes a different schema.
    /// Snapshots are written atomically, so this means external damage —
    /// unlike journal damage, there is no good prefix to rewind to.
    Snapshot(SnapshotError),
    /// A journal record references a relation the schema does not have (or
    /// has at a different arity).
    SchemaMismatch(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "store i/o failure ({op}): {source}"),
            StoreError::Snapshot(e) => write!(f, "{e}"),
            StoreError::SchemaMismatch(msg) => write!(f, "store schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Snapshot(e) => Some(e),
            StoreError::SchemaMismatch(_) => None,
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> StoreError {
        StoreError::Snapshot(e)
    }
}

fn io_err(op: &str, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op: op.to_owned(),
        source,
    }
}

/// What [`InstanceStore::open`] found and did while recovering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the loaded snapshot (0 when none existed).
    pub snapshot_epoch: u64,
    /// Epoch of the recovered instance after journal replay — the store's
    /// durable high-water mark.
    pub recovered_epoch: u64,
    /// Journal frames replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Journal frames skipped as already folded into the snapshot.
    pub frames_skipped: usize,
    /// Ops applied during replay.
    pub ops_applied: usize,
    /// Frames dropped because the tail was torn mid-append.
    pub torn_frames: usize,
    /// Frames dropped because a checksum failed or a payload would not
    /// decode.
    pub corrupt_frames: usize,
    /// Bytes cut off the journal tail.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// Did recovery have to rewind (drop a damaged tail)?
    pub fn rewound(&self) -> bool {
        self.torn_frames + self.corrupt_frames > 0
    }

    /// Frames dropped for either reason.
    pub fn truncated_frames(&self) -> usize {
        self.torn_frames + self.corrupt_frames
    }
}

/// Deterministic I/O fault points, mirroring `pde-runtime`'s `FaultPlan`
/// for the chase: each point fires once when its trigger index is reached,
/// so the crash-recovery tests can hit exact byte boundaries. Only
/// available with the `fault-injection` cargo feature.
#[cfg(feature = "fault-injection")]
#[derive(Clone, Debug, Default)]
pub struct StoreFaultPlan {
    /// On the n-th [`InstanceStore::commit`] (0-based), write only the
    /// first `cut` bytes of the frame and fail — a crash mid-append.
    pub short_write_at_commit: Option<(u64, usize)>,
    /// On the next [`InstanceStore::checkpoint`], write the temp snapshot
    /// but fail before the rename — a crash between `fsync` and `rename`.
    pub crash_before_rename: bool,
    /// On the n-th commit, append the frame fully but flip bit 0 of the
    /// byte at `offset` within the frame afterwards — silent sector rot
    /// that only recovery's checksum can catch.
    pub bit_flip_at_commit: Option<(u64, usize)>,
}

/// Internal metric counters, exported as `store.*` gauges/counters.
#[derive(Clone, Copy, Debug, Default)]
struct StoreCounters {
    recoveries: u64,
    frames_replayed: u64,
    frames_skipped: u64,
    truncated_frames: u64,
    truncated_bytes: u64,
    commits: u64,
    ops_committed: u64,
    snapshots_written: u64,
    /// Latency distribution of successful commits (encode + append +
    /// `fdatasync`), in nanoseconds. Failed commits are not recorded.
    commit_ns: pde_trace::Histogram,
}

/// A crash-safe durable store for one instance.
///
/// The store persists the *base* (user-committed) facts; derived chased
/// state is recomputed or incrementally maintained by the caller. All
/// writes are durable when the call returns: journal appends are
/// `fdatasync`ed, snapshots go through temp-file + `fsync` + rename.
pub struct InstanceStore {
    dir: PathBuf,
    schema: Arc<Schema>,
    journal: File,
    journal_bytes: u64,
    epoch: u64,
    counters: StoreCounters,
    #[cfg(feature = "fault-injection")]
    faults: StoreFaultPlan,
}

impl InstanceStore {
    /// Open (or create) the store in `dir` and recover its instance:
    /// snapshot, then the journal's good frame prefix, then truncate any
    /// damaged tail. Returns the store handle, the recovered instance, and
    /// a [`RecoveryReport`] describing what happened.
    pub fn open(
        dir: impl AsRef<Path>,
        schema: Arc<Schema>,
    ) -> Result<(InstanceStore, Instance, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store directory", e))?;
        // A stale temp snapshot is a checkpoint that crashed before its
        // rename: the old snapshot is still the authoritative one.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP_FILE));

        let mut report = RecoveryReport::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut instance = match fs::read(&snap_path) {
            Ok(bytes) => {
                let (instance, epoch) = read_snapshot(&bytes, &schema)?;
                report.snapshot_epoch = epoch;
                instance
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Instance::new(schema.clone()),
            Err(e) => return Err(io_err("read snapshot", e)),
        };

        let journal_path = dir.join(JOURNAL_FILE);
        let bytes = match fs::read(&journal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read journal", e)),
        };
        let scan = scan_journal(&bytes);
        report.torn_frames = scan.torn_frames;
        report.corrupt_frames = scan.corrupt_frames;
        for (epoch, ops) in &scan.frames {
            if *epoch <= report.snapshot_epoch {
                report.frames_skipped += 1;
                continue;
            }
            instance.set_epoch(*epoch);
            for op in ops {
                apply_op(&mut instance, op)?;
                report.ops_applied += 1;
            }
            report.frames_replayed += 1;
        }
        report.recovered_epoch = report
            .snapshot_epoch
            .max(scan.frames.last().map_or(0, |(e, _)| *e));
        instance.set_epoch(report.recovered_epoch);

        // Rewind: rewrite a headerless file, truncate a damaged tail.
        let good_len = if scan.header_ok {
            scan.good_len as u64
        } else {
            0
        };
        let mut journal = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&journal_path)
            .map_err(|e| io_err("open journal", e))?;
        let file_len = u64::try_from(bytes.len()).expect("journal length fits u64");
        report.truncated_bytes = file_len.saturating_sub(good_len.max(JOURNAL_MAGIC.len() as u64));
        if !scan.header_ok {
            journal
                .set_len(0)
                .and_then(|()| journal.write_all(JOURNAL_MAGIC))
                .and_then(|()| journal.sync_data())
                .map_err(|e| io_err("rewrite journal header", e))?;
        } else if good_len < file_len {
            journal
                .set_len(good_len)
                .and_then(|()| journal.sync_data())
                .map_err(|e| io_err("truncate journal tail", e))?;
        }
        let journal_bytes = journal
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek journal end", e))?;

        let mut counters = StoreCounters {
            frames_replayed: report.frames_replayed as u64,
            frames_skipped: report.frames_skipped as u64,
            truncated_frames: report.truncated_frames() as u64,
            truncated_bytes: report.truncated_bytes,
            ..StoreCounters::default()
        };
        if report.rewound() {
            counters.recoveries = 1;
        }
        let store = InstanceStore {
            dir,
            schema,
            journal,
            journal_bytes,
            epoch: report.recovered_epoch,
            counters,
            #[cfg(feature = "fault-injection")]
            faults: StoreFaultPlan::default(),
        };
        Ok((store, instance, report))
    }

    /// Arm deterministic I/O fault points for the crash-recovery tests.
    #[cfg(feature = "fault-injection")]
    pub fn set_faults(&mut self, faults: StoreFaultPlan) {
        self.faults = faults;
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The last durably committed epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current journal size in bytes (header included).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Durably append one commit batch: `ops` happened at `epoch`. The
    /// frame is flushed and `fdatasync`ed before the call returns — once
    /// `commit` succeeds, recovery will replay it.
    ///
    /// # Panics
    /// Panics if `epoch` is not beyond the last committed epoch (the
    /// journal's frames must be strictly increasing for skip-replay to be
    /// sound).
    pub fn commit(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError> {
        assert!(
            epoch > self.epoch,
            "commit epoch {epoch} must exceed the last committed epoch {}",
            self.epoch
        );
        let commit_start = Instant::now();
        let _commit_span = pde_trace::span("store.commit")
            .field("epoch", epoch)
            .field("ops", ops.len());
        let mut frame = Vec::new();
        append_frame(&mut frame, &encode_batch(epoch, ops));
        #[cfg(feature = "fault-injection")]
        let commit_index = self.counters.commits;

        #[cfg(feature = "fault-injection")]
        if let Some((at, cut)) = self.faults.short_write_at_commit {
            if commit_index >= at {
                self.faults.short_write_at_commit = None;
                let cut = cut.min(frame.len());
                self.journal
                    .write_all(&frame[..cut])
                    .and_then(|()| self.journal.sync_data())
                    .map_err(|e| io_err("append journal frame", e))?;
                self.journal_bytes += cut as u64;
                return Err(io_err(
                    "append journal frame",
                    std::io::Error::other("injected fault: short write (crash mid-append)"),
                ));
            }
        }

        self.journal
            .write_all(&frame)
            .and_then(|()| self.journal.sync_data())
            .map_err(|e| io_err("append journal frame", e))?;

        #[cfg(feature = "fault-injection")]
        if let Some((at, offset)) = self.faults.bit_flip_at_commit {
            if commit_index >= at {
                self.faults.bit_flip_at_commit = None;
                let offset = offset % frame.len();
                let pos = self.journal_bytes + offset as u64;
                let flipped = frame[offset] ^ 1;
                self.journal
                    .seek(SeekFrom::Start(pos))
                    .and_then(|_| self.journal.write_all(&[flipped]))
                    .and_then(|()| self.journal.seek(SeekFrom::End(0)))
                    .and_then(|_| self.journal.sync_data())
                    .map_err(|e| io_err("inject bit flip", e))?;
            }
        }

        self.journal_bytes += frame.len() as u64;
        self.epoch = epoch;
        self.counters.commits += 1;
        self.counters.ops_committed += ops.len() as u64;
        self.counters
            .commit_ns
            .record(u64::try_from(commit_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(())
    }

    /// Write a fresh snapshot of `instance` atomically (temp-file +
    /// `fsync` + rename) and truncate the journal — every committed epoch
    /// is now folded into the snapshot. The snapshot is stamped with the
    /// store's durable epoch (not the instance's internal counter), so a
    /// journal tail that survives a crash mid-checkpoint replays
    /// idempotently.
    pub fn checkpoint(&mut self, instance: &Instance) -> Result<(), StoreError> {
        let epoch = self.epoch.max(instance.current_epoch());
        let bytes = write_snapshot(instance, epoch);
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        let dst = self.dir.join(SNAPSHOT_FILE);
        let mut f = File::create(&tmp).map_err(|e| io_err("create temp snapshot", e))?;
        f.write_all(&bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("write temp snapshot", e))?;
        drop(f);

        #[cfg(feature = "fault-injection")]
        if self.faults.crash_before_rename {
            self.faults.crash_before_rename = false;
            return Err(io_err(
                "rename snapshot",
                std::io::Error::other("injected fault: crash before rename"),
            ));
        }

        fs::rename(&tmp, &dst).map_err(|e| io_err("rename snapshot", e))?;
        // Directory fsync is best-effort: some filesystems refuse it, and
        // the rename itself is already ordered after the file fsync.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.journal
            .set_len(JOURNAL_MAGIC.len() as u64)
            .and_then(|()| self.journal.seek(SeekFrom::Start(0)))
            .and_then(|_| self.journal.write_all(JOURNAL_MAGIC))
            .and_then(|()| self.journal.sync_data())
            .and_then(|()| self.journal.seek(SeekFrom::End(0)))
            .map_err(|e| io_err("reset journal after checkpoint", e))?;
        self.journal_bytes = JOURNAL_MAGIC.len() as u64;
        self.epoch = epoch;
        self.counters.snapshots_written += 1;
        Ok(())
    }

    /// Export `store.*` counters into a metrics registry (feeds the
    /// `--stats --format json` run report).
    pub fn export_metrics(&self, metrics: &mut pde_trace::MetricsRegistry) {
        metrics.set("store.journal_bytes", self.journal_bytes);
        metrics.set("store.epoch", self.epoch);
        metrics.add("store.commits", self.counters.commits);
        metrics.add("store.ops_committed", self.counters.ops_committed);
        metrics.add("store.frames_replayed", self.counters.frames_replayed);
        metrics.add("store.frames_skipped", self.counters.frames_skipped);
        metrics.add("store.recoveries", self.counters.recoveries);
        metrics.add("store.truncated_frames", self.counters.truncated_frames);
        metrics.add("store.truncated_bytes", self.counters.truncated_bytes);
        metrics.add("store.snapshots_written", self.counters.snapshots_written);
        metrics.merge_histogram("store.commit_ns", &self.counters.commit_ns);
    }

    /// The schema this store was opened under.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

/// Apply one journal op to the recovered instance. The caller has already
/// stamped the instance's epoch with the frame's epoch.
fn apply_op(instance: &mut Instance, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Insert { rel, values } | Op::Retract { rel, values } => {
            let schema = instance.schema().clone();
            let id = schema.rel_id(*rel).ok_or_else(|| {
                StoreError::SchemaMismatch(format!("journal references unknown relation {rel}"))
            })?;
            if values.len() != schema.arity(id) as usize {
                return Err(StoreError::SchemaMismatch(format!(
                    "journal fact {rel}/{} does not match schema arity {}",
                    values.len(),
                    schema.arity(id)
                )));
            }
            let t = Tuple::new(values.clone());
            if matches!(op, Op::Insert { .. }) {
                instance.insert(id, t);
            } else {
                instance.remove(id, &t);
            }
        }
        Op::Merge { from, to } => instance.substitute(*from, *to),
    }
    Ok(())
}

/// Convenience builders for the common ops.
impl Op {
    /// An insert of `rel(values…)`.
    pub fn insert(rel: impl Into<pde_relational::Symbol>, values: Vec<Value>) -> Op {
        Op::Insert {
            rel: rel.into(),
            values,
        }
    }

    /// A retract of `rel(values…)`.
    pub fn retract(rel: impl Into<pde_relational::Symbol>, values: Vec<Value>) -> Op {
        Op::Retract {
            rel: rel.into(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_instance, parse_schema};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2;").unwrap())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pde-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn consts(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::constant(*v)).collect()
    }

    #[test]
    fn fresh_store_opens_empty() {
        let dir = temp_dir("fresh");
        let (store, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
        assert_eq!(instance.fact_count(), 0);
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.journal_bytes(), JOURNAL_MAGIC.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commits_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
            store
                .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                .unwrap();
            store
                .commit(2, &[Op::insert("E", consts(&["b", "c"]))])
                .unwrap();
        }
        let (store, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
        assert_eq!(report.recovered_epoch, 2);
        assert_eq!(report.frames_replayed, 2);
        assert!(!report.rewound());
        assert_eq!(instance.fact_count(), 2);
        assert_eq!(store.epoch(), 2);
        // Per-frame epochs became row stamps: the delta window works.
        let e = instance.schema().rel_id("E").unwrap();
        assert_eq!(instance.relation(e).rows_in_window(2, u64::MAX).count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_folds_journal_into_snapshot() {
        let dir = temp_dir("checkpoint");
        {
            let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
            store
                .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                .unwrap();
            let s = schema();
            let mut inst = parse_instance(&s, "E(a, b).").unwrap();
            inst.set_epoch(1);
            store.checkpoint(&inst).unwrap();
            assert_eq!(store.journal_bytes(), JOURNAL_MAGIC.len() as u64);
            store
                .commit(2, &[Op::retract("E", consts(&["a", "b"]))])
                .unwrap();
        }
        let (_, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
        assert_eq!(report.snapshot_epoch, 1);
        assert_eq!(report.frames_replayed, 1);
        assert_eq!(instance.fact_count(), 0, "the retract replayed");
        assert_eq!(report.recovered_epoch, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merges_replay_through_substitution() {
        let dir = temp_dir("merge");
        let s = schema();
        {
            let (mut store, _, _) = InstanceStore::open(&dir, s.clone()).unwrap();
            store
                .commit(
                    1,
                    &[Op::Insert {
                        rel: "H".into(),
                        values: vec![Value::Null(pde_relational::NullId(4)), Value::constant("b")],
                    }],
                )
                .unwrap();
            store
                .commit(
                    2,
                    &[Op::Merge {
                        from: Value::Null(pde_relational::NullId(4)),
                        to: Value::constant("a"),
                    }],
                )
                .unwrap();
        }
        let (_, instance, _) = InstanceStore::open(&dir, s.clone()).unwrap();
        let h = s.rel_id("H").unwrap();
        assert!(instance.contains(h, &Tuple::consts(["a", "b"])));
        assert!(instance.is_ground());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_rewinds_to_last_good_epoch() {
        let dir = temp_dir("torn");
        {
            let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
            store
                .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                .unwrap();
            store
                .commit(2, &[Op::insert("E", consts(&["b", "c"]))])
                .unwrap();
        }
        // Tear the last 5 bytes off, as a crash mid-append would.
        let path = dir.join(JOURNAL_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (store, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
        assert_eq!(report.recovered_epoch, 1);
        assert_eq!(report.torn_frames, 1);
        assert!(report.rewound());
        assert_eq!(instance.fact_count(), 1);
        // The file was truncated: reopening again is clean.
        drop(store);
        let (_, instance2, report2) = InstanceStore::open(&dir, schema()).unwrap();
        assert!(!report2.rewound());
        assert!(instance2.same_facts(&instance));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_store_accepts_new_commits_after_rewind() {
        let dir = temp_dir("rewind-commit");
        {
            let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
            store
                .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                .unwrap();
            store
                .commit(2, &[Op::insert("E", consts(&["b", "c"]))])
                .unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let (mut store, mut instance, report) = InstanceStore::open(&dir, schema()).unwrap();
        assert_eq!(report.recovered_epoch, 1);
        // Re-commit at a fresh epoch on top of the rewound state.
        let e3 = {
            instance.bump_epoch();
            instance.insert_consts("E", ["x", "y"]);
            instance.current_epoch()
        };
        store
            .commit(e3, &[Op::insert("E", consts(&["x", "y"]))])
            .unwrap();
        let (_, back, report2) = InstanceStore::open(&dir, schema()).unwrap();
        assert!(!report2.rewound());
        assert!(back.same_facts(&instance));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_relation_in_journal_is_schema_mismatch() {
        let dir = temp_dir("schema");
        {
            let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
            store
                .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                .unwrap();
        }
        let other = Arc::new(parse_schema("source X/2;").unwrap());
        assert!(matches!(
            InstanceStore::open(&dir, other),
            Err(StoreError::SchemaMismatch(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_export_under_store_prefix() {
        let dir = temp_dir("metrics");
        let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
        store
            .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
            .unwrap();
        let mut m = pde_trace::MetricsRegistry::new();
        store.export_metrics(&mut m);
        assert_eq!(m.get("store.commits"), Some(1));
        assert_eq!(m.get("store.ops_committed"), Some(1));
        assert!(m.get("store.journal_bytes").unwrap() > JOURNAL_MAGIC.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    mod faults {
        use super::*;

        #[test]
        fn short_write_recovers_to_previous_epoch() {
            let dir = temp_dir("short-write");
            {
                let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
                store
                    .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                    .unwrap();
                store.set_faults(StoreFaultPlan {
                    short_write_at_commit: Some((1, 7)),
                    ..StoreFaultPlan::default()
                });
                let err = store
                    .commit(2, &[Op::insert("E", consts(&["b", "c"]))])
                    .unwrap_err();
                assert!(err.to_string().contains("short write"), "{err}");
            }
            let (_, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
            assert_eq!(report.recovered_epoch, 1);
            assert_eq!(report.torn_frames, 1);
            assert_eq!(instance.fact_count(), 1);
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn crash_before_rename_keeps_old_snapshot() {
            let dir = temp_dir("no-rename");
            {
                let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
                store
                    .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                    .unwrap();
                let s = schema();
                let mut inst = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
                inst.set_epoch(1);
                store.set_faults(StoreFaultPlan {
                    crash_before_rename: true,
                    ..StoreFaultPlan::default()
                });
                let err = store.checkpoint(&inst).unwrap_err();
                assert!(err.to_string().contains("before rename"), "{err}");
                assert!(dir.join(SNAPSHOT_TMP_FILE).exists());
            }
            // Recovery ignores the orphaned temp file; the journal still
            // holds epoch 1.
            let (_, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
            assert_eq!(report.snapshot_epoch, 0);
            assert_eq!(report.recovered_epoch, 1);
            assert_eq!(instance.fact_count(), 1);
            assert!(!dir.join(SNAPSHOT_TMP_FILE).exists(), "temp cleaned up");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn bit_flip_is_caught_and_truncated() {
            let dir = temp_dir("bit-flip");
            {
                let (mut store, _, _) = InstanceStore::open(&dir, schema()).unwrap();
                store
                    .commit(1, &[Op::insert("E", consts(&["a", "b"]))])
                    .unwrap();
                store.set_faults(StoreFaultPlan {
                    bit_flip_at_commit: Some((1, 13)),
                    ..StoreFaultPlan::default()
                });
                // The commit itself reports success — the rot is silent.
                store
                    .commit(2, &[Op::insert("E", consts(&["b", "c"]))])
                    .unwrap();
            }
            let (_, instance, report) = InstanceStore::open(&dir, schema()).unwrap();
            assert_eq!(report.recovered_epoch, 1);
            assert_eq!(report.corrupt_frames, 1);
            assert_eq!(instance.fact_count(), 1);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
