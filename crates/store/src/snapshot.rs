//! Atomic columnar snapshots of an [`Instance`].
//!
//! A snapshot is the whole instance serialized from the PR 8
//! structure-of-arrays layout: a *symbol dictionary* (every distinct
//! constant string, in first-use order) followed by each relation's rows as
//! packed 32-bit ids plus their 64-bit insertion epochs. Ids in the file
//! are **snapshot-local**: the process-global interner indexes behind
//! [`pde_relational::ValueId`] are not stable across restarts (they depend
//! on interning order), so constants travel as dictionary references and
//! are re-interned on load. Null ids *are* stable (they are chase-local
//! counters) and travel verbatim. The local id mirrors the in-memory
//! packing — bit 0 tags the sort, the payload is a dictionary index or a
//! null id — so encode/decode is pure bit arithmetic plus one table
//! lookup.
//!
//! The file is `PDESNAP1` + body + a trailing FNV-1a checksum of the body,
//! and is only ever produced by [`crate::InstanceStore::checkpoint`]'s
//! temp-file + rename protocol: readers see either the old snapshot or the
//! new one, never a torn one.

use crate::frame::{fnv1a, put_string, DecodeError, Reader};
use pde_relational::{Instance, NullId, Schema, Value, ValueId};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Magic bytes opening every snapshot file (8 bytes, versioned).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PDESNAP1";

/// Why a snapshot file was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`] or fails its
    /// trailing checksum — it is not a (whole) snapshot.
    Corrupt(String),
    /// The snapshot decodes but describes different relations than the
    /// schema it is being loaded under.
    SchemaMismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::SchemaMismatch(msg) => write!(f, "snapshot schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize `instance` into snapshot bytes (magic + body + checksum),
/// stamped as folding every commit up to and including `epoch`. The stamp
/// is the caller's durable high-water mark, not the instance's internal
/// epoch counter — journal frames at or below it are skipped on replay,
/// so an understated stamp would double-apply retracts.
///
/// Rows are read through the arena-backed
/// [`Instance::for_each_fact`] — zero tuples are materialized.
pub fn write_snapshot(instance: &Instance, epoch: u64) -> Vec<u8> {
    let schema = instance.schema();
    // Pass 1: collect the constant dictionary in first-use order.
    let mut dict: Vec<ValueId> = Vec::new();
    let mut local_of: HashMap<u32, u32> = HashMap::new();
    let _ = instance.for_each_fact(|_, ids| {
        for id in ids {
            if id.is_const() {
                let next = u32::try_from(dict.len()).expect("dictionary overflow");
                local_of.entry(id.raw()).or_insert_with(|| {
                    dict.push(*id);
                    next
                });
            }
        }
        ControlFlow::Continue(())
    });
    // Body.
    let mut body: Vec<u8> = Vec::new();
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(
        &u32::try_from(dict.len())
            .expect("dictionary overflow")
            .to_le_bytes(),
    );
    for id in &dict {
        let Value::Const(sym) = id.value() else {
            unreachable!("dictionary holds constants only");
        };
        put_string(&mut body, &sym.as_str());
    }
    let rel_count = u32::try_from(schema.len()).expect("schema overflow");
    body.extend_from_slice(&rel_count.to_le_bytes());
    for rel in schema.rel_ids() {
        let r = instance.relation(rel);
        put_string(&mut body, &schema.name(rel).as_str());
        body.extend_from_slice(&u32::from(r.arity()).to_le_bytes());
        let rows = u32::try_from(r.len()).expect("relation overflow");
        body.extend_from_slice(&rows.to_le_bytes());
        // Rows first (packed local ids, row-major), then the epoch column.
        let mut epochs: Vec<u64> = Vec::with_capacity(r.len());
        let _ = r.for_each_row(|row, ids| {
            for id in ids {
                let local = if id.is_null() {
                    id.raw() // null payloads are stable: keep tag + id
                } else {
                    local_of[&id.raw()] << 1
                };
                body.extend_from_slice(&local.to_le_bytes());
            }
            epochs.push(r.epoch_of(row));
            ControlFlow::Continue(())
        });
        for e in epochs {
            body.extend_from_slice(&e.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Decode snapshot bytes into an [`Instance`] over `schema`, returning the
/// instance and the epoch the snapshot was taken at. Constants are
/// re-interned through the dictionary; per-row insertion epochs are
/// preserved so delta windows survive a restart.
pub fn read_snapshot(bytes: &[u8], schema: &Arc<Schema>) -> Result<(Instance, u64), SnapshotError> {
    let corrupt = |msg: String| SnapshotError::Corrupt(msg);
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("missing snapshot magic".into()));
    }
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if fnv1a(body) != stored {
        return Err(corrupt("snapshot checksum mismatch".into()));
    }
    let decode = |e: DecodeError| SnapshotError::Corrupt(e.0);
    let mut r = Reader::new(body);
    let epoch = r.u64().map_err(decode)?;
    let dict_len = r.u32().map_err(decode)? as usize;
    let mut dict: Vec<ValueId> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let s = r.string().map_err(decode)?;
        dict.push(ValueId::pack(Value::constant(s)));
    }
    let rel_count = r.u32().map_err(decode)? as usize;
    if rel_count != schema.len() {
        return Err(SnapshotError::SchemaMismatch(format!(
            "snapshot has {rel_count} relations, schema has {}",
            schema.len()
        )));
    }
    let mut instance = Instance::new(schema.clone());
    let mut row: Vec<ValueId> = Vec::new();
    for rel in schema.rel_ids() {
        let name = r.string().map_err(decode)?.to_owned();
        let arity = r.u32().map_err(decode)?;
        let expected_name = schema.name(rel).as_str();
        if name != expected_name || arity != u32::from(schema.arity(rel)) {
            return Err(SnapshotError::SchemaMismatch(format!(
                "snapshot relation {name}/{arity} does not match schema relation \
                 {expected_name}/{}",
                schema.arity(rel)
            )));
        }
        let rows = r.u32().map_err(decode)? as usize;
        let arity = arity as usize;
        let mut all_ids: Vec<ValueId> = Vec::with_capacity(rows * arity);
        for _ in 0..rows {
            for _ in 0..arity {
                let local = r.u32().map_err(decode)?;
                let id = if local & 1 == 1 {
                    ValueId::pack(Value::Null(NullId(local >> 1)))
                } else {
                    *dict.get((local >> 1) as usize).ok_or_else(|| {
                        corrupt(format!("dictionary reference {} out of range", local >> 1))
                    })?
                };
                all_ids.push(id);
            }
        }
        for i in 0..rows {
            let row_epoch = r.u64().map_err(decode)?;
            row.clear();
            row.extend_from_slice(&all_ids[i * arity..(i + 1) * arity]);
            instance.insert_ids_at(rel, &row, row_epoch);
        }
    }
    if !r.is_done() {
        return Err(corrupt("trailing bytes after snapshot body".into()));
    }
    instance.set_epoch(epoch);
    Ok((instance, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_instance, parse_schema};

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2;").unwrap())
    }

    #[test]
    fn snapshots_round_trip_facts_nulls_and_epochs() {
        let s = schema();
        let mut i = parse_instance(&s, "E(a, b). H(?3, a).").unwrap();
        i.bump_epoch();
        i.insert_consts("E", ["b", "c"]);
        let bytes = write_snapshot(&i, i.current_epoch());
        let (back, epoch) = read_snapshot(&bytes, &s).unwrap();
        assert_eq!(epoch, 1);
        assert!(back.same_facts(&i));
        assert_eq!(back.current_epoch(), 1);
        // Per-row epochs survived: the delta window still isolates the
        // second insert.
        let e = s.rel_id("E").unwrap();
        assert_eq!(back.relation(e).rows_in_window(1, u64::MAX).count(), 1);
    }

    #[test]
    fn empty_instances_round_trip() {
        let s = schema();
        let i = Instance::new(s.clone());
        let (back, epoch) = read_snapshot(&write_snapshot(&i, i.current_epoch()), &s).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(back.fact_count(), 0);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let s = schema();
        let i = parse_instance(&s, "E(a, b). H(a, ?0).").unwrap();
        let pristine = write_snapshot(&i, i.current_epoch());
        for byte in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[byte] ^= 0x10;
            assert!(
                read_snapshot(&bytes, &s).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let s = schema();
        let i = parse_instance(&s, "E(a, b).").unwrap();
        let pristine = write_snapshot(&i, i.current_epoch());
        for cut in 0..pristine.len() {
            assert!(read_snapshot(&pristine[..cut], &s).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn schema_mismatch_is_structured() {
        let s = schema();
        let i = parse_instance(&s, "E(a, b).").unwrap();
        let bytes = write_snapshot(&i, i.current_epoch());
        let other = Arc::new(parse_schema("source E/2; target K/2;").unwrap());
        assert!(matches!(
            read_snapshot(&bytes, &other),
            Err(SnapshotError::SchemaMismatch(_))
        ));
        let third = Arc::new(parse_schema("source E/2;").unwrap());
        assert!(matches!(
            read_snapshot(&bytes, &third),
            Err(SnapshotError::SchemaMismatch(_))
        ));
    }
}
