//! Checksummed length-prefixed frames — the journal's unit of atomicity.
//!
//! Every journal record is written as one frame: a little-endian `u32`
//! payload length, a `u32` FNV-1a checksum of the payload, then the payload
//! bytes. A reader scanning a byte buffer can always classify the next
//! frame as *good* (length fits, checksum matches), *torn* (the buffer ends
//! before the frame does — the signature of a crash mid-append), or
//! *corrupt* (the bytes are all there but the checksum disagrees — bit rot
//! or a flipped length). Recovery truncates at the first frame that is not
//! good; because appends write the payload before any reader ever sees the
//! file again, a prefix of good frames is exactly a prefix of committed
//! epochs.

/// Bytes of the per-frame header: `u32` length + `u32` checksum.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Largest payload a frame may carry (1 GiB). A length prefix beyond this
/// is treated as corruption rather than attempting a huge read: no honest
/// commit batch approaches it.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 30;

/// 32-bit FNV-1a hash of `bytes` — the same cheap integer hash family the
/// columnar row store keys on, reused here as the frame checksum.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in bytes {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append one frame (header + payload) to `out`.
///
/// # Panics
/// Panics if the payload exceeds `MAX_FRAME_PAYLOAD` (1 GiB).
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload too large"
    );
    let len = u32::try_from(payload.len()).expect("frame payload too large");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Classification of the next frame in a buffer, from [`read_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete frame with a matching checksum; the cursor advanced past
    /// it.
    Frame(&'a [u8]),
    /// The buffer ends before the frame does — a crash mid-append. The
    /// cursor stays at the frame start (the truncation point).
    Torn,
    /// The frame's bytes are present but the checksum disagrees (or the
    /// length prefix is absurd) — corruption. The cursor stays at the
    /// frame start.
    Corrupt,
    /// The cursor is exactly at the end of the buffer: a clean tail.
    End,
}

/// Read the frame starting at `*at` in `buf`, advancing the cursor only on
/// success. Torn and corrupt frames leave the cursor at the frame start so
/// the caller can truncate there.
pub fn read_frame<'a>(buf: &'a [u8], at: &mut usize) -> FrameRead<'a> {
    let start = *at;
    if start == buf.len() {
        return FrameRead::End;
    }
    if buf.len() - start < FRAME_HEADER_BYTES {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(buf[start..start + 4].try_into().expect("4 bytes")) as usize;
    let sum = u32::from_le_bytes(buf[start + 4..start + 8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return FrameRead::Corrupt;
    }
    let body_start = start + FRAME_HEADER_BYTES;
    let Some(body_end) = body_start.checked_add(len).filter(|e| *e <= buf.len()) else {
        return FrameRead::Torn;
    };
    let payload = &buf[body_start..body_end];
    if fnv1a(payload) != sum {
        return FrameRead::Corrupt;
    }
    *at = body_end;
    FrameRead::Frame(payload)
}

/// Structured decode failure inside a checksum-valid payload (can only be
/// reached by deliberately crafted bytes — a checksummed frame that fails
/// to decode is treated like corruption by the journal reader).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// A little-endian cursor over a byte slice, for decoding frame payloads
/// and the snapshot body without ever panicking on short input.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.at == self.buf.len()
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.at < n {
            return Err(DecodeError(format!(
                "unexpected end of input at byte {} (need {n})",
                self.at
            )));
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u32` length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError("invalid UTF-8 string".into()))
    }
}

/// Append a `u32` length-prefixed UTF-8 string to `out`.
pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("string too long for journal");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"hello");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"world!");
        let mut at = 0;
        assert_eq!(read_frame(&buf, &mut at), FrameRead::Frame(b"hello"));
        assert_eq!(read_frame(&buf, &mut at), FrameRead::Frame(b""));
        assert_eq!(read_frame(&buf, &mut at), FrameRead::Frame(b"world!"));
        assert_eq!(read_frame(&buf, &mut at), FrameRead::End);
        assert_eq!(at, buf.len());
    }

    #[test]
    fn truncation_at_every_byte_is_torn_or_end_or_shorter_prefix() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"abcdef");
        append_frame(&mut buf, b"ghij");
        for cut in 0..buf.len() {
            let cutbuf = &buf[..cut];
            let mut at = 0;
            // Scan: every truncation yields a (possibly empty) prefix of
            // good frames followed by Torn or End — never Corrupt, never a
            // wrong payload.
            loop {
                match read_frame(cutbuf, &mut at) {
                    FrameRead::Frame(p) => {
                        assert!(p == b"abcdef" || p == b"ghij");
                    }
                    FrameRead::Torn => break,
                    FrameRead::End => break,
                    FrameRead::Corrupt => panic!("truncation produced Corrupt at cut {cut}"),
                }
            }
            assert!(at <= cut);
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut pristine = Vec::new();
        append_frame(&mut pristine, b"payload-bytes");
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut buf = pristine.clone();
                buf[byte] ^= 1 << bit;
                let mut at = 0;
                match read_frame(&buf, &mut at) {
                    // A flip may masquerade as a longer frame (length
                    // field grew): that reads as Torn. Everything else
                    // must be caught by the checksum.
                    FrameRead::Torn | FrameRead::Corrupt => {}
                    other => panic!("flip at {byte}.{bit} gave {other:?}"),
                }
                assert_eq!(at, 0, "cursor must not advance past a bad frame");
            }
        }
    }

    #[test]
    fn reader_rejects_short_input() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = Reader::new(&[3, 0, 0, 0, b'a']);
        assert!(r.string().is_err(), "length 3 but only one byte present");
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        put_string(&mut buf, "héllo");
        put_string(&mut buf, "");
        let mut r = Reader::new(&buf);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.string().unwrap(), "");
        assert!(r.is_done());
    }
}
