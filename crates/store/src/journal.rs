//! The append-only epoch journal: framed insert/retract/merge records.
//!
//! Between two snapshots, every committed mutation batch is appended to the
//! journal as one checksummed frame whose payload is the batch's epoch
//! followed by its [`Op`]s. Records are fully self-contained — constants
//! travel as strings, nulls as their stable ids — so replay never depends
//! on interner state from the writing process. Replay applies each good
//! frame in order, *skipping* frames whose epoch is at or below the
//! snapshot's (a checkpoint folds those into the snapshot; re-reading a
//! journal tail that survived the checkpoint's truncation is therefore
//! idempotent), and stops at the first torn or corrupt frame — the
//! truncation point recovery rewinds the file to.

use crate::frame::{append_frame, put_string, read_frame, DecodeError, FrameRead, Reader};
use pde_relational::{NullId, Symbol, Value};

/// Magic bytes opening every journal file (8 bytes, versioned).
pub const JOURNAL_MAGIC: &[u8; 8] = b"PDEJRNL1";

/// One durable mutation of the base instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert the fact `rel(values…)`.
    Insert {
        /// Relation name.
        rel: Symbol,
        /// The tuple's values.
        values: Vec<Value>,
    },
    /// Retract the fact `rel(values…)`.
    Retract {
        /// Relation name.
        rel: Symbol,
        /// The tuple's values.
        values: Vec<Value>,
    },
    /// Replace every occurrence of `from` by `to` (an egd-style merge).
    Merge {
        /// The value being replaced.
        from: Value,
        /// The replacement.
        to: Value,
    },
}

const OP_INSERT: u8 = 0;
const OP_RETRACT: u8 = 1;
const OP_MERGE: u8 = 2;
const VAL_CONST: u8 = 0;
const VAL_NULL: u8 = 1;

fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Const(sym) => {
            out.push(VAL_CONST);
            put_string(out, &sym.as_str());
        }
        Value::Null(n) => {
            out.push(VAL_NULL);
            out.extend_from_slice(&n.0.to_le_bytes());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        VAL_CONST => Ok(Value::constant(r.string()?)),
        VAL_NULL => Ok(Value::Null(NullId(r.u32()?))),
        tag => Err(DecodeError(format!("unknown value tag {tag}"))),
    }
}

/// Encode one commit batch (`epoch` + `ops`) as a frame payload.
pub fn encode_batch(epoch: u64, ops: &[Op]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&epoch.to_le_bytes());
    let count = u32::try_from(ops.len()).expect("op batch too large");
    out.extend_from_slice(&count.to_le_bytes());
    for op in ops {
        match op {
            Op::Insert { rel, values } | Op::Retract { rel, values } => {
                out.push(if matches!(op, Op::Insert { .. }) {
                    OP_INSERT
                } else {
                    OP_RETRACT
                });
                put_string(&mut out, &rel.as_str());
                let arity = u32::try_from(values.len()).expect("tuple too wide");
                out.extend_from_slice(&arity.to_le_bytes());
                for v in values {
                    put_value(&mut out, *v);
                }
            }
            Op::Merge { from, to } => {
                out.push(OP_MERGE);
                put_value(&mut out, *from);
                put_value(&mut out, *to);
            }
        }
    }
    out
}

/// Decode a frame payload back into its epoch and ops.
pub fn decode_batch(payload: &[u8]) -> Result<(u64, Vec<Op>), DecodeError> {
    let mut r = Reader::new(payload);
    let epoch = r.u64()?;
    let count = r.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let op = match r.u8()? {
            tag @ (OP_INSERT | OP_RETRACT) => {
                let rel = Symbol::intern(r.string()?);
                let arity = r.u32()? as usize;
                let mut values = Vec::with_capacity(arity.min(64));
                for _ in 0..arity {
                    values.push(read_value(&mut r)?);
                }
                if tag == OP_INSERT {
                    Op::Insert { rel, values }
                } else {
                    Op::Retract { rel, values }
                }
            }
            OP_MERGE => Op::Merge {
                from: read_value(&mut r)?,
                to: read_value(&mut r)?,
            },
            tag => return Err(DecodeError(format!("unknown op tag {tag}"))),
        };
        ops.push(op);
    }
    if !r.is_done() {
        return Err(DecodeError("trailing bytes after op batch".into()));
    }
    Ok((epoch, ops))
}

/// Append one commit batch as a frame to `out` (which must already carry
/// the journal header).
pub fn append_batch(out: &mut Vec<u8>, epoch: u64, ops: &[Op]) {
    append_frame(out, &encode_batch(epoch, ops));
}

/// Outcome of scanning journal bytes: how far the good prefix reaches and
/// what was wrong with the rest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Did the file carry a valid [`JOURNAL_MAGIC`] header? When `false`
    /// the whole file is discarded (truncation point 0 of the payload
    /// region) and every other field is zero.
    pub header_ok: bool,
    /// Good frames decoded, whatever their epoch.
    pub frames: Vec<(u64, Vec<Op>)>,
    /// Byte offset of the end of the good prefix — the truncation point.
    pub good_len: usize,
    /// `1` if the scan ended at a torn frame (crash mid-append).
    pub torn_frames: usize,
    /// `1` if the scan ended at a checksum-failing or undecodable frame.
    pub corrupt_frames: usize,
}

impl JournalScan {
    /// Did the scan end early (torn or corrupt tail)?
    pub fn truncated(&self) -> bool {
        self.torn_frames + self.corrupt_frames > 0
    }
}

/// Scan journal bytes into the longest good frame prefix. Never fails:
/// damage is reported in the scan, not as an error — a damaged journal
/// recovers to its good prefix.
pub fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan::default();
    if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        // Missing/short/garbled header: nothing recoverable. An empty or
        // half-written header counts as torn, a wrong one as corrupt.
        if bytes.is_empty() {
            scan.header_ok = false;
        } else if bytes.len() < JOURNAL_MAGIC.len() {
            scan.torn_frames = 1;
        } else {
            scan.corrupt_frames = 1;
        }
        return scan;
    }
    scan.header_ok = true;
    let mut at = JOURNAL_MAGIC.len();
    scan.good_len = at;
    loop {
        match read_frame(bytes, &mut at) {
            FrameRead::Frame(payload) => match decode_batch(payload) {
                Ok(batch) => {
                    scan.frames.push(batch);
                    scan.good_len = at;
                }
                Err(_) => {
                    // Checksummed but undecodable: treat as corruption.
                    scan.corrupt_frames = 1;
                    return scan;
                }
            },
            FrameRead::End => return scan,
            FrameRead::Torn => {
                scan.torn_frames = 1;
                return scan;
            }
            FrameRead::Corrupt => {
                scan.corrupt_frames = 1;
                return scan;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<Op> {
        vec![
            Op::Insert {
                rel: Symbol::intern("E"),
                values: vec![Value::constant("a"), Value::constant("b")],
            },
            Op::Retract {
                rel: Symbol::intern("E"),
                values: vec![Value::constant("a"), Value::Null(NullId(7))],
            },
            Op::Merge {
                from: Value::Null(NullId(3)),
                to: Value::constant("c"),
            },
        ]
    }

    #[test]
    fn batches_round_trip() {
        let payload = encode_batch(42, &ops());
        let (epoch, back) = decode_batch(&payload).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(back, ops());
    }

    #[test]
    fn scan_reads_frames_in_order() {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        append_batch(&mut bytes, 1, &ops()[..1]);
        append_batch(&mut bytes, 2, &ops()[1..]);
        let scan = scan_journal(&bytes);
        assert!(scan.header_ok && !scan.truncated());
        assert_eq!(scan.good_len, bytes.len());
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].0, 1);
        assert_eq!(scan.frames[1].0, 2);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_frame_prefix() {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        append_batch(&mut bytes, 1, &ops());
        append_batch(&mut bytes, 2, &ops()[..1]);
        append_batch(&mut bytes, 3, &ops()[2..]);
        let full = scan_journal(&bytes);
        assert_eq!(full.frames.len(), 3);
        for cut in 0..bytes.len() {
            let scan = scan_journal(&bytes[..cut]);
            // The recovered frames are a strict prefix of the full list,
            // and the truncation point never exceeds the cut.
            assert!(scan.frames.len() <= full.frames.len());
            assert_eq!(scan.frames[..], full.frames[..scan.frames.len()]);
            assert!(scan.good_len <= cut.max(JOURNAL_MAGIC.len()));
            if cut < bytes.len() {
                assert!(
                    !scan.header_ok || scan.truncated() || scan.good_len <= cut,
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn corrupt_tail_keeps_good_prefix() {
        let mut bytes = JOURNAL_MAGIC.to_vec();
        append_batch(&mut bytes, 1, &ops());
        let good = bytes.len();
        append_batch(&mut bytes, 2, &ops());
        let flip = good + 12; // inside the second frame's payload
        bytes[flip] ^= 0x40;
        let scan = scan_journal(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.good_len, good);
        assert_eq!(scan.corrupt_frames, 1);
    }

    #[test]
    fn headerless_bytes_recover_to_nothing() {
        assert!(!scan_journal(b"").header_ok);
        let scan = scan_journal(b"PDEJ");
        assert!(!scan.header_ok);
        assert_eq!(scan.torn_frames, 1);
        let scan = scan_journal(b"NOTAJRNL-and-some-garbage");
        assert!(!scan.header_ok);
        assert_eq!(scan.corrupt_frames, 1);
        assert!(scan.frames.is_empty());
    }
}
