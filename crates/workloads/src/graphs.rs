//! Graphs, generators, and direct baseline algorithms.
//!
//! The paper's lower bounds reduce CLIQUE and 3-COLORABILITY to peer data
//! exchange. To *validate* those reductions (not just run them), this
//! module provides the graph side: generators for the benchmark sweeps and
//! straightforward exact solvers — a k-clique backtracking search and a
//! 3-coloring search — used as ground truth in tests and as the "direct"
//! baselines in the experiment harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// An undirected simple graph (symmetric, irreflexive edge set) on
/// vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: u32,
    edges: BTreeSet<(u32, u32)>,
}

impl Graph {
    /// The empty graph on `n` vertices.
    pub fn empty(n: u32) -> Graph {
        Graph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add the undirected edge `{u, v}` (self-loops are rejected).
    ///
    /// # Panics
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "simple graphs have no self-loops");
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// Is `{u, v}` an edge?
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Iterate over undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// The neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> Vec<u32> {
        (0..self.n).filter(|v| self.has_edge(u, *v)).collect()
    }

    /// Vertices sorted by decreasing degree (heuristic orderings).
    pub fn by_degree(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = (0..self.n).collect();
        vs.sort_by_key(|v| std::cmp::Reverse(self.neighbors(*v).len()));
        vs
    }

    /// The complete graph `K_n`.
    pub fn complete(n: u32) -> Graph {
        let mut g = Graph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// The cycle `C_n` (n ≥ 3).
    pub fn cycle(n: u32) -> Graph {
        assert!(n >= 3, "cycles need at least 3 vertices");
        let mut g = Graph::empty(n);
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
        g
    }

    /// The path `P_n` (n ≥ 2).
    pub fn path(n: u32) -> Graph {
        assert!(n >= 2, "paths need at least 2 vertices");
        let mut g = Graph::empty(n);
        for u in 0..n - 1 {
            g.add_edge(u, u + 1);
        }
        g
    }

    /// Erdős–Rényi `G(n, p)`, deterministic per seed.
    pub fn gnp(n: u32, p: f64, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// `G(n, p)` with a planted clique on `k` random vertices.
    pub fn planted_clique(n: u32, p: f64, k: u32, seed: u64) -> Graph {
        assert!(k <= n, "clique larger than graph");
        let mut g = Graph::gnp(n, p, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e3779b97f4a7c15));
        let mut verts: Vec<u32> = (0..n).collect();
        // Fisher-Yates prefix shuffle.
        for i in 0..k as usize {
            let j = rng.gen_range(i..n as usize);
            verts.swap(i, j);
        }
        for i in 0..k as usize {
            for j in (i + 1)..k as usize {
                g.add_edge(verts[i], verts[j]);
            }
        }
        g
    }

    /// The complete bipartite graph `K_{a,b}` (triangle-free, 2-colorable).
    pub fn complete_bipartite(a: u32, b: u32) -> Graph {
        let mut g = Graph::empty(a + b);
        for u in 0..a {
            for v in a..a + b {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Disjoint union of `count` cliques of size `size` each.
    pub fn disjoint_cliques(count: u32, size: u32) -> Graph {
        let mut g = Graph::empty(count * size);
        for c in 0..count {
            let base = c * size;
            for u in 0..size {
                for v in (u + 1)..size {
                    g.add_edge(base + u, base + v);
                }
            }
        }
        g
    }
}

/// Does `g` contain a clique of size `k`? Backtracking over candidate
/// extensions, pruning by remaining-candidate count.
pub fn has_k_clique(g: &Graph, k: u32) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return g.vertex_count() > 0;
    }
    let order = g.by_degree();
    let mut chosen: Vec<u32> = Vec::new();
    fn extend(g: &Graph, order: &[u32], from: usize, chosen: &mut Vec<u32>, k: u32) -> bool {
        if chosen.len() == k as usize {
            return true;
        }
        let need = k as usize - chosen.len();
        if order.len() - from < need {
            return false;
        }
        for i in from..order.len() {
            let v = order[i];
            if chosen.iter().all(|u| g.has_edge(*u, v)) {
                chosen.push(v);
                if extend(g, order, i + 1, chosen, k) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }
    extend(g, &order, 0, &mut chosen, k)
}

/// A proper `k`-coloring of `g` (vertex → color in `0..k`), if one exists.
/// Backtracking in degree order.
pub fn k_coloring(g: &Graph, k: u32) -> Option<Vec<u32>> {
    let n = g.vertex_count() as usize;
    let order = g.by_degree();
    let mut colors: Vec<Option<u32>> = vec![None; n];
    fn go(g: &Graph, order: &[u32], pos: usize, k: u32, colors: &mut Vec<Option<u32>>) -> bool {
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        for c in 0..k {
            if g.neighbors(v)
                .iter()
                .all(|u| colors[*u as usize] != Some(c))
            {
                colors[v as usize] = Some(c);
                if go(g, order, pos + 1, k, colors) {
                    return true;
                }
                colors[v as usize] = None;
            }
        }
        false
    }
    if go(g, &order, 0, k, &mut colors) {
        Some(
            colors
                .into_iter()
                .map(|c| c.expect("all colored"))
                .collect(),
        )
    } else {
        None
    }
}

/// Is `g` 3-colorable?
pub fn is_three_colorable(g: &Graph) -> bool {
    k_coloring(g, 3).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_sizes() {
        assert_eq!(Graph::complete(5).edge_count(), 10);
        assert_eq!(Graph::cycle(5).edge_count(), 5);
        assert_eq!(Graph::path(5).edge_count(), 4);
        assert_eq!(Graph::complete_bipartite(2, 3).edge_count(), 6);
        assert_eq!(Graph::disjoint_cliques(3, 4).edge_count(), 18);
    }

    #[test]
    fn edges_are_symmetric_and_irreflexive() {
        let g = Graph::cycle(4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loops_rejected() {
        Graph::empty(3).add_edge(1, 1);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = Graph::gnp(20, 0.3, 7);
        let b = Graph::gnp(20, 0.3, 7);
        let c = Graph::gnp(20, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clique_detection_on_known_graphs() {
        assert!(has_k_clique(&Graph::complete(5), 5));
        assert!(!has_k_clique(&Graph::complete(4), 5));
        assert!(has_k_clique(&Graph::cycle(5), 2));
        assert!(!has_k_clique(&Graph::cycle(5), 3));
        assert!(!has_k_clique(&Graph::complete_bipartite(3, 3), 3));
        assert!(has_k_clique(&Graph::empty(3), 1));
        assert!(!has_k_clique(&Graph::empty(0), 1));
        assert!(has_k_clique(&Graph::empty(0), 0));
    }

    #[test]
    fn planted_clique_is_found() {
        for seed in 0..5 {
            let g = Graph::planted_clique(20, 0.1, 5, seed);
            assert!(has_k_clique(&g, 5), "seed {seed}");
        }
    }

    #[test]
    fn coloring_on_known_graphs() {
        assert!(is_three_colorable(&Graph::cycle(4)));
        assert!(is_three_colorable(&Graph::cycle(5))); // odd cycles need 3
        assert!(is_three_colorable(&Graph::complete(3)));
        assert!(!is_three_colorable(&Graph::complete(4)));
        assert!(is_three_colorable(&Graph::complete_bipartite(4, 4)));
        assert!(is_three_colorable(&Graph::path(10)));
    }

    #[test]
    fn colorings_are_proper() {
        let g = Graph::gnp(12, 0.25, 3);
        if let Some(c) = k_coloring(&g, 3) {
            for (u, v) in g.edges() {
                assert_ne!(c[u as usize], c[v as usize]);
            }
        }
    }

    #[test]
    fn disjoint_cliques_clique_number() {
        let g = Graph::disjoint_cliques(2, 4);
        assert!(has_k_clique(&g, 4));
        assert!(!has_k_clique(&g, 5));
    }
}
