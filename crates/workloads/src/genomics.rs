//! The §1 motivating scenario: an authoritative protein database
//! (Swiss-Prot) feeding a university database under a different schema.
//!
//! The university (target) periodically receives new data but cannot write
//! back, and restricts what it accepts with target-to-source constraints:
//! it only stores proteins it can trace to an accession in the source, and
//! only annotations the source actually asserts. All Σts dependencies are
//! LAV, so the setting sits in `C_tract` and syncs run in polynomial time
//! (experiment E14).
//!
//! The generator is synthetic (Swiss-Prot itself is not redistributable
//! here) but shape-faithful: accession-keyed protein records with organism
//! and GO-term annotations, plus a configurable fraction of "rogue" target
//! facts that make a sync round unsolvable — the case where the university
//! already holds claims the authority does not back.

use pde_core::PdeSetting;
use pde_relational::{parse_instance, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The genomics sync setting.
///
/// ```text
/// source sp_protein(acc, name, organism)
/// source sp_annotation(acc, go_term)
/// target u_protein(acc, organism)
/// target u_annotation(acc, go_term)
///
/// Σst: sp_protein(a, n, o) → u_protein(a, o)
///      sp_protein(a, n, o) ∧ sp_annotation(a, g) → u_annotation(a, g)
/// Σts: u_protein(a, o) → ∃n . sp_protein(a, n, o)
///      u_annotation(a, g) → sp_annotation(a, g)
/// ```
pub fn genomics_setting() -> PdeSetting {
    PdeSetting::parse(
        "source sp_protein/3; source sp_annotation/2; \
         target u_protein/2; target u_annotation/2;",
        "sp_protein(a, n, o) -> u_protein(a, o);
         sp_protein(a, n, o), sp_annotation(a, g) -> u_annotation(a, g)",
        "u_protein(a, o) -> exists n . sp_protein(a, n, o);
         u_annotation(a, g) -> sp_annotation(a, g)",
        "",
    )
    .expect("genomics setting is well-formed")
}

/// Parameters of a synthetic sync round.
#[derive(Clone, Copy, Debug)]
pub struct GenomicsParams {
    /// Number of source protein records.
    pub proteins: u32,
    /// Annotations per protein (on average).
    pub annotations_per_protein: u32,
    /// Number of distinct organisms.
    pub organisms: u32,
    /// Number of distinct GO terms.
    pub go_terms: u32,
    /// Pre-existing (consistent) target records.
    pub preloaded: u32,
    /// Rogue target facts with no source backing (each makes the round
    /// unsolvable).
    pub rogue: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomicsParams {
    fn default() -> Self {
        GenomicsParams {
            proteins: 50,
            annotations_per_protein: 3,
            organisms: 5,
            go_terms: 40,
            preloaded: 10,
            rogue: 0,
            seed: 42,
        }
    }
}

/// Generate a sync-round input `(I, J)` for the genomics setting.
pub fn genomics_instance(setting: &PdeSetting, params: &GenomicsParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut src = String::new();
    let organism = |i: u32| format!("org{i}");
    for p in 0..params.proteins {
        let o = rng.gen_range(0..params.organisms.max(1));
        src.push_str(&format!(
            "sp_protein(P{p:05}, protname{p}, {}). ",
            organism(o)
        ));
        for _ in 0..params.annotations_per_protein {
            let g = rng.gen_range(0..params.go_terms.max(1));
            src.push_str(&format!("sp_annotation(P{p:05}, GO{g:07}). "));
        }
    }
    // Rogue target facts: accessions the source has never heard of.
    for r in 0..params.rogue {
        src.push_str(&format!("u_protein(ROGUE{r}, orgx). "));
    }
    let mut inst = parse_instance(setting.schema(), &src).expect("generated instance parses");
    // Preload: copy the first `preloaded` proteins into the target with
    // their true organisms (read back from the parsed source).
    let spp = setting.schema().rel_id("sp_protein").unwrap();
    let upp = setting.schema().rel_id("u_protein").unwrap();
    let copies: Vec<pde_relational::Tuple> = inst
        .relation(spp)
        .iter()
        .take(params.preloaded as usize)
        .map(|t| pde_relational::Tuple::new(vec![t.get(0), t.get(2)]))
        .collect();
    for t in copies {
        inst.insert(upp, t);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_core::{solver, tractable, SolverKind};

    #[test]
    fn setting_is_tractable_lav() {
        let p = genomics_setting();
        let c = p.classification();
        assert!(c.ctract.ts_all_lav);
        assert!(c.tractable());
    }

    #[test]
    fn clean_sync_round_solves() {
        let p = genomics_setting();
        let input = genomics_instance(&p, &GenomicsParams::default());
        let out = tractable::exists_solution(&p, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(pde_core::is_solution(&p, &input, &w));
        // Every source protein arrived in the target.
        let upp = p.schema().rel_id("u_protein").unwrap();
        assert!(w.relation(upp).len() >= 50);
    }

    #[test]
    fn rogue_facts_block_the_round() {
        let p = genomics_setting();
        let params = GenomicsParams {
            rogue: 1,
            ..GenomicsParams::default()
        };
        let input = genomics_instance(&p, &params);
        let out = tractable::exists_solution(&p, &input).unwrap();
        assert!(!out.exists, "an unbacked u_protein fact has no solution");
    }

    #[test]
    fn facade_selects_the_tractable_path() {
        let p = genomics_setting();
        let input = genomics_instance(&p, &GenomicsParams::default());
        let r = solver::decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::Tractable);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = genomics_setting();
        let a = genomics_instance(&p, &GenomicsParams::default());
        let b = genomics_instance(&p, &GenomicsParams::default());
        assert!(a.same_facts(&b));
    }

    #[test]
    fn preloaded_facts_are_in_every_solution() {
        let p = genomics_setting();
        let params = GenomicsParams {
            proteins: 5,
            preloaded: 3,
            ..GenomicsParams::default()
        };
        let input = genomics_instance(&p, &params);
        let upp = p.schema().rel_id("u_protein").unwrap();
        assert!(input.relation(upp).len() >= 3);
        let out = tractable::exists_solution(&p, &input).unwrap();
        let w = out.witness.unwrap();
        for t in input.relation(upp).iter() {
            assert!(w.contains(upp, &t));
        }
    }
}
