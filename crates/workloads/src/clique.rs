//! The Theorem 3 reduction: CLIQUE ≤p SOL(P).
//!
//! Given a graph `G` and `k`, the paper builds the source instance
//! `I(G, k)` with `D` the inequality relation on `k` fresh elements, `S`
//! the identity relation on `V`, and `E` the (symmetric, irreflexive) edge
//! relation; the target holds a single 4-ary relation `P`, and
//!
//! ```text
//! Σst: D(x,y) → ∃z ∃w P(x,z,y,w)
//! Σts: P(x,z,y,w) → E(z,w)
//!      P(x,z,y,w) ∧ P(x,z',y',w') → S(z,z')
//! ```
//!
//! **Correction.** As printed, the reduction is incomplete: nothing ties
//! the `w`-coordinate of `P(x,z,y,w)` to the node assigned to `y`, so any
//! graph with a single edge admits the solution that maps every element to
//! one endpoint and every `w` to the other. We therefore add the symmetric
//! consistency dependency
//!
//! ```text
//!      P(x,z,y,w) ∧ P(y,z',y',w') → S(w,z')
//! ```
//!
//! with which `G` has a `k`-clique iff a solution exists (validated in the
//! tests against the direct clique search). The added tgd preserves the
//! paper's classification analysis: condition 1 of `C_tract` still holds,
//! and conditions 2.1/2.2 still fail exactly as described in §4. The
//! original, literal setting is kept as
//! [`clique_setting_paper_literal`] so the discrepancy is reproducible.

use crate::graphs::Graph;
use pde_core::PdeSetting;
use pde_relational::{parse_instance, ConjunctiveQuery, Instance, UnionQuery};

/// The (corrected) Theorem 3 setting.
pub fn clique_setting() -> PdeSetting {
    PdeSetting::parse(
        "source D/2; source S/2; source E/2; target P/4;",
        "D(x, y) -> exists z, w . P(x, z, y, w)",
        "P(x, z, y, w) -> E(z, w);
         P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2);
         P(x, z, y, w), P(y, z2, y2, w2) -> S(w, z2)",
        "",
    )
    .expect("clique setting is well-formed")
}

/// The literal setting as printed in the paper (missing the `w`-coordinate
/// consistency tgd). Kept to document the discrepancy; see the module
/// docs and `tests::literal_setting_is_too_weak`.
pub fn clique_setting_paper_literal() -> PdeSetting {
    PdeSetting::parse(
        "source D/2; source S/2; source E/2; target P/4;",
        "D(x, y) -> exists z, w . P(x, z, y, w)",
        "P(x, z, y, w) -> E(z, w);
         P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
        "",
    )
    .expect("literal clique setting is well-formed")
}

/// Names of the `k` elements: `elem0, elem1, …`.
fn elem(i: u32) -> String {
    format!("elem{i}")
}

/// Name of graph vertex `v`.
fn node(v: u32) -> String {
    format!("v{v}")
}

/// Build the source instance `I(G, k)`: `D` = inequality on `k` elements,
/// `S` = identity on `V`, `E` = symmetric edges of `G`. The target is
/// empty.
pub fn clique_instance(setting: &PdeSetting, g: &Graph, k: u32) -> Instance {
    let mut src = String::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                src.push_str(&format!("D({}, {}). ", elem(i), elem(j)));
            }
        }
    }
    for v in 0..g.vertex_count() {
        src.push_str(&format!("S({}, {}). ", node(v), node(v)));
    }
    for (u, v) in g.edges() {
        src.push_str(&format!(
            "E({}, {}). E({}, {}). ",
            node(u),
            node(v),
            node(v),
            node(u)
        ));
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

/// The coNP-hardness variant of the instance: the `k` distinct elements
/// are drawn from `V` itself (vertices `0..k`; the paper notes `V` can be
/// padded when it has fewer than `k` nodes). Combine with
/// [`certain_query`].
pub fn clique_instance_elements_from_v(setting: &PdeSetting, g: &Graph, k: u32) -> Instance {
    assert!(
        g.vertex_count() >= k,
        "pad the graph to at least k vertices first"
    );
    let mut src = String::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                src.push_str(&format!("D({}, {}). ", node(i), node(j)));
            }
        }
    }
    for v in 0..g.vertex_count() {
        src.push_str(&format!("S({}, {}). ", node(v), node(v)));
    }
    for (u, v) in g.edges() {
        src.push_str(&format!(
            "E({}, {}). E({}, {}). ",
            node(u),
            node(v),
            node(v),
            node(u)
        ));
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

/// The Boolean query `q = ∃x P(x, x, x, x)` of Theorem 3's coNP-hardness
/// argument: `certain(q, (I(G,k), ∅)) = false` iff `G` has a `k`-clique.
pub fn certain_query(setting: &PdeSetting) -> UnionQuery {
    let q = pde_relational::parse_query(setting.schema(), "P(x, x, x, x)").expect("query parses");
    UnionQuery::new(vec![q])
}

/// A non-Boolean probe query `q(x) :- P(x, z, y, w)` (the elements that
/// received an assignment), used in tests.
pub fn elements_query(setting: &PdeSetting) -> ConjunctiveQuery {
    pde_relational::parse_query(setting.schema(), "q(x) :- P(x, z, y, w)").expect("query parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::has_k_clique;
    use pde_core::{assignment, certain_answers, GenericLimits};

    #[test]
    fn reduction_agrees_with_direct_clique_search() {
        let p = clique_setting();
        let cases: Vec<(Graph, u32)> = vec![
            (Graph::complete(3), 3),
            (Graph::complete(4), 3),
            (Graph::complete(4), 4),
            (Graph::path(4), 3),
            (Graph::cycle(5), 3),
            (Graph::cycle(5), 2),
            (Graph::complete_bipartite(2, 2), 3),
            (Graph::planted_clique(6, 0.2, 3, 11), 3),
            (Graph::gnp(6, 0.3, 5), 3),
        ];
        for (g, k) in cases {
            let input = clique_instance(&p, &g, k);
            let out = assignment::solve(&p, &input).unwrap();
            assert_eq!(
                out.exists,
                has_k_clique(&g, k),
                "n={} k={k}",
                g.vertex_count()
            );
        }
    }

    #[test]
    fn literal_setting_is_too_weak() {
        // Documented discrepancy: under the setting exactly as printed, a
        // path (no 3-clique) still admits a solution.
        let p = clique_setting_paper_literal();
        let g = Graph::path(3);
        assert!(!has_k_clique(&g, 3));
        let input = clique_instance(&p, &g, 3);
        let out = assignment::solve(&p, &input).unwrap();
        assert!(
            out.exists,
            "the literal reduction accepts graphs without a k-clique"
        );
    }

    #[test]
    fn classification_matches_paper_discussion() {
        // Both the literal and corrected settings satisfy condition 1 and
        // violate 2.1 and 2.2 (§4's minimality discussion).
        for p in [clique_setting(), clique_setting_paper_literal()] {
            let c = p.classification();
            assert!(c.ctract.holds1());
            assert!(!c.ctract.holds2_1());
            assert!(!c.ctract.holds2_2());
            assert!(!c.tractable());
        }
    }

    #[test]
    fn certain_answers_refute_iff_clique_exists() {
        let p = clique_setting();
        let q = certain_query(&p);
        // Triangle, k = 3: clique exists ⇒ certain(q) = false.
        let tri = clique_instance_elements_from_v(&p, &Graph::complete(3), 3);
        let out = certain_answers(&p, &tri, &q, GenericLimits::default()).unwrap();
        assert!(out.solution_exists);
        assert!(!out.certain_bool());
        // Path, k = 3: no clique ⇒ no solution ⇒ certain(q) = true.
        let path = clique_instance_elements_from_v(&p, &Graph::path(3), 3);
        let out = certain_answers(&p, &path, &q, GenericLimits::default()).unwrap();
        assert!(!out.solution_exists);
        assert!(out.certain_bool());
    }

    #[test]
    fn witness_encodes_a_clique() {
        let p = clique_setting();
        let g = Graph::planted_clique(6, 0.1, 3, 2);
        let input = clique_instance(&p, &g, 3);
        let out = assignment::solve(&p, &input).unwrap();
        let w = out.witness.expect("clique exists");
        // Read the assignment off the witness: P(elem_i, z, elem_j, w).
        let prel = p.schema().rel_id("P").unwrap();
        for t in w.relation(prel).iter() {
            let z = t.get(1);
            let wv = t.get(3);
            assert!(z.is_const() && wv.is_const());
            assert_ne!(z, wv, "E is irreflexive, assigned nodes differ");
        }
    }

    #[test]
    fn instance_sizes_scale_as_expected() {
        let p = clique_setting();
        let g = Graph::complete(5);
        let input = clique_instance(&p, &g, 3);
        let d = p.schema().rel_id("D").unwrap();
        let s = p.schema().rel_id("S").unwrap();
        let e = p.schema().rel_id("E").unwrap();
        assert_eq!(input.relation(d).len(), 6); // k(k-1)
        assert_eq!(input.relation(s).len(), 5); // |V|
        assert_eq!(input.relation(e).len(), 20); // 2·|E|
    }
}
