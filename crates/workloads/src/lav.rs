//! Scalable workloads for the LAV tractable class (Corollary 2 / E5).
//!
//! Σst is an arbitrary tgd set; Σts consists of LAV dependencies (single
//! unrepeated-variable premise), so the setting is in `C_tract` and
//! `ExistsSolution` runs in polynomial time. The generators produce
//! instances of controllable size in both the solvable and unsolvable
//! regimes, so the E5 sweep measures genuine work in each.

use crate::graphs::Graph;
use pde_core::PdeSetting;
use pde_relational::{parse_instance, Instance};

/// The LAV path-closure setting: `H` must be supported by `E`, edge by
/// edge and 2-path by 2-path.
///
/// ```text
/// Σst: E(x,z) ∧ E(z,y) → H(x,y)
/// Σts: H(x,y) → ∃z . E(x,z) ∧ E(z,y)         (LAV, with existential)
///      H(x,y) → E(x,y)                       (LAV, no existentials)
/// ```
///
/// The existential dependency is listed first so the `I_can` chase creates
/// genuine null blocks before the full dependency fills in the ground
/// demands — exercising the Theorem 6 block machinery.
pub fn lav_setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "H(x, y) -> exists z . E(x, z), E(z, y); H(x, y) -> E(x, y)",
        "",
    )
    .expect("LAV setting is well-formed")
}

/// A *solvable* instance of size Θ(cliques·size²): a disjoint union of
/// directed cliques with self-loops. Such graphs are closed under 2-path
/// composition, and every edge lies on a 2-path, so a solution always
/// exists and the solver does full work on it.
pub fn lav_solvable_instance(setting: &PdeSetting, cliques: u32, size: u32) -> Instance {
    let mut src = String::new();
    for c in 0..cliques {
        for u in 0..size {
            for v in 0..size {
                src.push_str(&format!("E(c{c}n{u}, c{c}n{v}). "));
            }
        }
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

/// An *unsolvable* variant: one cross-clique edge breaks closure (its
/// forced `H` fact has no `E` support).
pub fn lav_unsolvable_instance(setting: &PdeSetting, cliques: u32, size: u32) -> Instance {
    assert!(cliques >= 2 && size >= 1);
    let mut inst = lav_solvable_instance(setting, cliques, size);
    let extra = parse_instance(setting.schema(), "E(c0n0, c1n0).").expect("parses");
    inst = inst.union(&extra);
    inst
}

/// A graph-shaped instance for arbitrary inputs (used by property tests):
/// directed edges of `g` plus optional self-loops.
pub fn lav_graph_instance(setting: &PdeSetting, g: &Graph, self_loops: bool) -> Instance {
    let mut src = String::new();
    for (u, v) in g.edges() {
        src.push_str(&format!("E(v{u}, v{v}). E(v{v}, v{u}). "));
    }
    if self_loops {
        for v in 0..g.vertex_count() {
            src.push_str(&format!("E(v{v}, v{v}). "));
        }
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_core::{assignment, tractable};

    #[test]
    fn setting_is_in_ctract_via_lav() {
        let p = lav_setting();
        let c = p.classification();
        assert!(c.ctract.ts_all_lav);
        assert!(c.tractable());
    }

    #[test]
    fn solvable_instances_solve() {
        let p = lav_setting();
        for (cl, sz) in [(1u32, 2u32), (2, 3), (3, 2)] {
            let input = lav_solvable_instance(&p, cl, sz);
            let out = tractable::exists_solution(&p, &input).unwrap();
            assert!(out.exists, "cliques={cl} size={sz}");
            assert!(pde_core::is_solution(&p, &input, &out.witness.unwrap()));
        }
    }

    #[test]
    fn unsolvable_instances_fail() {
        let p = lav_setting();
        let input = lav_unsolvable_instance(&p, 2, 2);
        assert!(!tractable::exists_solution(&p, &input).unwrap().exists);
    }

    #[test]
    fn tractable_and_assignment_solvers_agree() {
        let p = lav_setting();
        for input in [
            lav_solvable_instance(&p, 2, 2),
            lav_unsolvable_instance(&p, 2, 2),
            lav_graph_instance(&p, &Graph::cycle(4), true),
            lav_graph_instance(&p, &Graph::cycle(4), false),
            lav_graph_instance(&p, &Graph::complete(3), true),
        ] {
            let fast = tractable::exists_solution(&p, &input).unwrap().exists;
            let slow = assignment::solve(&p, &input).unwrap().exists;
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn instance_sizes_scale_quadratically_in_clique_size() {
        let p = lav_setting();
        let i = lav_solvable_instance(&p, 2, 4);
        assert_eq!(i.fact_count(), 2 * 16);
    }
}
