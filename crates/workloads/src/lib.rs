//! Workload generators and hardness reductions for the peer data exchange
//! experiments (see `EXPERIMENTS.md` at the workspace root).
//!
//! * [`graphs`]: graph type, generators, and direct CLIQUE / 3-COL
//!   baselines;
//! * [`clique`]: the Theorem 3 reduction (with the documented correction);
//! * [`threecol`]: the §4 disjunctive boundary reduction;
//! * [`boundary`]: the §4 target-egd and full-target-tgd boundary settings;
//! * [`lav`] / [`full`]: scalable `C_tract` workloads (Corollaries 2 / 1);
//! * [`genomics`]: the §1 Swiss-Prot-style motivating scenario;
//! * [`paper`]: every worked example of the paper as a fixture;
//! * [`random`]: random settings/instances for differential solver testing.

pub mod boundary;
pub mod clique;
pub mod full;
pub mod genomics;
pub mod graphs;
pub mod lav;
pub mod paper;
pub mod random;
pub mod threecol;

pub use graphs::{has_k_clique, is_three_colorable, k_coloring, Graph};
