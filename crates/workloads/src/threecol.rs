//! The §4 disjunctive boundary: 3-COLORABILITY ≤p SOL(P) once Σts may use
//! disjunction.
//!
//! Source relations: the edge relation `E` and three color unit relations
//! `R`, `B`, `G` (each holding one constant). Target: a copy `E2` of the
//! edges and the coloring relation `C`.
//!
//! ```text
//! Σst: E(x,y) → ∃u C(x,u)
//!      E(x,y) → E2(x,y)
//! Σts: E2(x,y) ∧ C(x,u) ∧ C(y,v) →   (R(u) ∧ B(v)) | (R(u) ∧ G(v))
//!                                  | (B(u) ∧ G(v)) | (B(u) ∧ R(v))
//!                                  | (G(u) ∧ R(v)) | (G(u) ∧ B(v))
//! ```
//!
//! (The paper's display garbles the ∧/∨ nesting; the intended formula is
//! the disjunction over the six ordered pairs of distinct colors.) The
//! plain parts of the setting satisfy conditions (1) and (2.2) of
//! `C_tract`, yet `E` is 3-colorable iff a solution exists — disjunction
//! alone crosses the tractability boundary.

use crate::graphs::Graph;
use pde_constraints::{parse_disjunctive_tgd, parser::parse_tgds};
use pde_core::assignment::DisjunctiveProblem;
use pde_relational::{parse_instance, parse_schema, Instance};
use std::sync::Arc;

/// Build the disjunctive 3-colorability problem.
pub fn threecol_problem() -> DisjunctiveProblem {
    let schema = Arc::new(
        parse_schema("source E/2; source R/1; source B/1; source G/1; target E2/2; target C/2;")
            .expect("schema parses"),
    );
    let st = parse_tgds(
        &schema,
        "E(x, y) -> exists u . C(x, u); E(x, y) -> E2(x, y)",
    )
    .expect("st tgds parse");
    let ts = vec![parse_disjunctive_tgd(
        &schema,
        "E2(x, y), C(x, u), C(y, v) -> R(u), B(v) | R(u), G(v) | B(u), G(v) \
         | B(u), R(v) | G(u), R(v) | G(u), B(v)",
    )
    .expect("disjunctive ts parses")];
    DisjunctiveProblem::new(schema, st, ts).expect("problem validates")
}

/// Build the source instance for graph `g`: symmetric edges plus the
/// three color constants `r`, `g`, `b`. The target is empty.
pub fn threecol_instance(problem: &DisjunctiveProblem, g: &Graph) -> Instance {
    let mut src = String::from("R(colr). G(colg). B(colb). ");
    for (u, v) in g.edges() {
        src.push_str(&format!("E(v{u}, v{v}). E(v{v}, v{u}). "));
    }
    parse_instance(problem.schema(), &src).expect("generated instance parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::is_three_colorable;
    use pde_core::assignment::solve_disjunctive;

    #[test]
    fn reduction_agrees_with_direct_coloring() {
        let p = threecol_problem();
        let cases = vec![
            Graph::cycle(4),
            Graph::cycle(5),
            Graph::complete(3),
            Graph::complete(4),
            Graph::complete_bipartite(2, 3),
            Graph::path(5),
            Graph::gnp(6, 0.4, 9),
        ];
        for g in cases {
            let input = threecol_instance(&p, &g);
            let out = solve_disjunctive(&p, &input).unwrap();
            assert_eq!(
                out.exists,
                is_three_colorable(&g),
                "n={} m={}",
                g.vertex_count(),
                g.edge_count()
            );
        }
    }

    #[test]
    fn witness_assigns_real_colors() {
        let p = threecol_problem();
        let g = Graph::cycle(5);
        let input = threecol_instance(&p, &g);
        let out = solve_disjunctive(&p, &input).unwrap();
        let w = out.witness.expect("odd cycles are 3-colorable");
        let c = p.schema().rel_id("C").unwrap();
        let colors: std::collections::BTreeSet<String> = w
            .relation(c)
            .iter()
            .map(|t| format!("{}", t.get(1)))
            .collect();
        assert!(colors
            .iter()
            .all(|s| ["colr", "colg", "colb"].contains(&s.as_str())));
        assert!(colors.len() >= 3, "an odd cycle needs all three colors");
    }

    #[test]
    fn k4_has_no_solution() {
        let p = threecol_problem();
        let input = threecol_instance(&p, &Graph::complete(4));
        assert!(!solve_disjunctive(&p, &input).unwrap().exists);
    }

    #[test]
    fn plain_parts_satisfy_ctract_conditions() {
        // The paper's point: Σst/Σts satisfy (1) and (2.2); only the
        // disjunction makes this hard. Check via the classifier on the
        // non-disjunctive skeleton (each disjunct separately is LAV-free
        // but single-premise... the relevant check is conditions 1 and 2.2
        // per disjunct-as-tgd).
        let p = threecol_problem();
        let d = &p.sigma_ts()[0];
        let marking = pde_constraints::Marking::of_st_tgds(p.sigma_st());
        // Each disjunct, viewed as a tgd, must respect conditions 1 and
        // 2.2 of Def. 9.
        for dj in &d.disjuncts {
            let t = pde_constraints::Tgd::new(
                d.premise.clone(),
                dj.existentials.iter().copied(),
                dj.conjunction.clone(),
            );
            let marked = marking.marked_variables(&t);
            // Condition 1: each marked variable at most once in the LHS.
            for v in &marked {
                assert!(t.premise.occurrences_of(*v) <= 1);
            }
            // Condition 2.2: marked RHS pairs — each disjunct's conjuncts
            // are unary, so no two marked variables co-occur at all.
            for atom in &t.conclusion.atoms {
                assert!(atom.variables().len() <= 1);
            }
        }
    }
}
