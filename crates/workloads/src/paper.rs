//! Every worked example of the paper, as ready-made fixtures.
//!
//! Each function returns the setting (and where relevant the instances)
//! exactly as discussed in the text, so tests, examples, and benches can
//! reference "Example 1" or "the §4 marked-variable example" directly.

use pde_core::PdeSetting;
use pde_relational::{parse_instance, Instance};

/// Example 1: `Σst: E(x,z) ∧ E(z,y) → H(x,y)`, `Σts: H(x,y) → E(x,y)`,
/// `Σt = ∅`.
pub fn example1_setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "H(x, y) -> E(x, y)",
        "",
    )
    .expect("Example 1 is well-formed")
}

/// Example 1's three instances: (no-solution, unique-solution,
/// two-solutions), each with `J = ∅`.
pub fn example1_instances(setting: &PdeSetting) -> [Instance; 3] {
    [
        parse_instance(setting.schema(), "E(a, b). E(b, c).").expect("parses"),
        parse_instance(setting.schema(), "E(a, a).").expect("parses"),
        parse_instance(setting.schema(), "E(a, b). E(b, c). E(a, c).").expect("parses"),
    ]
}

/// The §4 marked-variable illustration:
/// `Σst: S(x1,x2) → ∃y T(x1,y)`, `Σts: T(x1,x2) → ∃w S(w,x2)`.
pub fn marked_example_setting() -> PdeSetting {
    PdeSetting::parse(
        "source S/2; target T/2;",
        "S(x1, x2) -> exists y . T(x1, y)",
        "T(x1, x2) -> exists w . S(w, x2)",
        "",
    )
    .expect("marked example is well-formed")
}

/// The GLAV-with-exact-views encoding from §2: Σst `φ(x̄) → ∃ȳ ψ(x̄,ȳ)`
/// paired with Σts `ψ(x̄,ȳ) → φ(x̄)` states that the target view contains
/// *exactly* the source query's tuples. Instantiated here with
/// `φ = E(x,z) ∧ E(z,y)` and `ψ = H(x,y)`.
pub fn exact_view_setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "H(x, y) -> exists z . E(x, z), E(z, y)",
        "",
    )
    .expect("exact-view setting is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_core::{decide, tractable, SolverKind};
    use pde_relational::Peer;

    #[test]
    fn example1_matches_the_text() {
        let p = example1_setting();
        let [no, unique, two] = example1_instances(&p);
        assert!(!tractable::exists_solution(&p, &no).unwrap().exists);
        let u = tractable::exists_solution(&p, &unique).unwrap();
        assert!(u.exists);
        // "J' = {H(a,a)} is the only solution": the witness is exactly it.
        let w = u.witness.unwrap();
        assert_eq!(w.fact_count_of(Peer::Target), 1);
        assert!(tractable::exists_solution(&p, &two).unwrap().exists);
    }

    #[test]
    fn marked_example_is_tractable_lav() {
        let p = marked_example_setting();
        let c = p.classification();
        assert!(c.ctract.ts_all_lav);
        assert!(c.tractable());
    }

    #[test]
    fn exact_view_setting_decides_exactness() {
        let p = exact_view_setting();
        assert!(p.classification().tractable());
        // In a graph closed under 2-paths with loops, H can equal the
        // 2-path view exactly.
        let good =
            parse_instance(p.schema(), "E(a, a). E(a, b). E(b, b). E(b, a).").expect("parses");
        let r = decide(&p, &good).unwrap();
        assert_eq!(r.kind, SolverKind::Tractable);
        assert_eq!(r.exists, Some(true));
        // A lone edge's forced H(x,y) facts (none: no 2-paths) — trivially
        // solvable with empty H.
        let lone = parse_instance(p.schema(), "E(a, b).").expect("parses");
        assert_eq!(decide(&p, &lone).unwrap().exists, Some(true));
    }
}
