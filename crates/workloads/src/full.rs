//! Scalable workloads for the full-Σst tractable class (Corollary 1 / E6).
//!
//! Every source-to-target tgd is *full* (no existentials), so no target
//! position is marked and condition 2.2 of `C_tract` holds regardless of
//! the shape of Σts — which here has multi-literal premises and
//! existentials, i.e. it is *not* LAV, exercising the 2.2 side of the
//! class.

use pde_core::PdeSetting;
use pde_relational::{parse_instance, Instance};

/// The full-Σst setting: target mirrors `E` in `H` and `K`; Σts demands
/// 2-path support for `H∘K` compositions.
///
/// ```text
/// Σst: E(x,y) → H(x,y)
///      E(x,y) → K(y,x)
/// Σts: H(x,y) ∧ K(y,z) → ∃u . E(x,u) ∧ E(u,z)   (multi-literal, ∃)
/// ```
pub fn full_setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2; target K/2;",
        "E(x, y) -> H(x, y); E(x, y) -> K(y, x)",
        "H(x, y), K(y, z) -> exists u . E(x, u), E(u, z)",
        "",
    )
    .expect("full setting is well-formed")
}

/// Solvable instance: a union of directed cliques with self-loops (closed
/// under all the demanded compositions).
pub fn full_solvable_instance(setting: &PdeSetting, cliques: u32, size: u32) -> Instance {
    let mut src = String::new();
    for c in 0..cliques {
        for u in 0..size {
            for v in 0..size {
                src.push_str(&format!("E(c{c}n{u}, c{c}n{v}). "));
            }
        }
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

/// Unsolvable variant: a single edge with no 2-path support for the pair
/// (`H(a,b)`, `K(b,a)`) demands `E(a,u), E(u,a)` — absent.
pub fn full_unsolvable_instance(setting: &PdeSetting) -> Instance {
    parse_instance(setting.schema(), "E(a, b).").expect("parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_core::{assignment, tractable};

    #[test]
    fn setting_is_in_ctract_via_full_st() {
        let p = full_setting();
        let c = p.classification();
        assert!(c.ctract.st_all_full);
        assert!(!c.ctract.ts_all_lav, "Σts is genuinely non-LAV");
        assert!(!c.ctract.holds2_1(), "exercises the 2.2 side of the class");
        assert!(c.ctract.holds2_2());
        assert!(c.tractable());
    }

    #[test]
    fn solvable_and_unsolvable_cases() {
        let p = full_setting();
        let good = full_solvable_instance(&p, 2, 3);
        let out = tractable::exists_solution(&p, &good).unwrap();
        assert!(out.exists);
        assert!(pde_core::is_solution(&p, &good, &out.witness.unwrap()));
        let bad = full_unsolvable_instance(&p);
        assert!(!tractable::exists_solution(&p, &bad).unwrap().exists);
    }

    #[test]
    fn solvers_agree() {
        let p = full_setting();
        for input in [
            full_solvable_instance(&p, 1, 2),
            full_solvable_instance(&p, 2, 2),
            full_unsolvable_instance(&p),
        ] {
            let fast = tractable::exists_solution(&p, &input).unwrap().exists;
            let slow = assignment::solve(&p, &input).unwrap().exists;
            assert_eq!(fast, slow);
        }
    }
}
