//! The §4 target-constraint boundary settings.
//!
//! Both settings keep Σst and Σts inside conditions (1) and (2.1) of
//! `C_tract`, yet adding a *single* target egd — or a single *full* target
//! tgd — makes the existence-of-solutions problem NP-hard again, via
//! CLIQUE. As with the Theorem 3 reduction, the printed constraint sets
//! lack the `w`-coordinate consistency dependency; we add its egd/tgd
//! analogue (see `crate::clique` and DESIGN.md), which stays within the
//! same boundary shape (still "target egds only" / "one more full target
//! tgd").

use crate::graphs::Graph;
use pde_core::PdeSetting;
use pde_relational::{parse_instance, Instance};

/// Boundary setting 1: Σst/Σts satisfy (1) and (2.1); Σt holds egds only.
///
/// ```text
/// Σst: D(x,y) → ∃z ∃w P(x,z,y,w)
/// Σt:  P(x,z,y,w) ∧ P(x,z',y',w') → z = z'
///      P(x,z,y,w) ∧ P(y,z',y',w') → w = z'     (consistency, added)
/// Σts: P(x,z,y,w) → E(z,w)
/// ```
pub fn egd_boundary_setting() -> PdeSetting {
    PdeSetting::parse(
        "source D/2; source E/2; target P/4;",
        "D(x, y) -> exists z, w . P(x, z, y, w)",
        "P(x, z, y, w) -> E(z, w)",
        "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2;
         P(x, z, y, w), P(y, z2, y2, w2) -> w = z2",
    )
    .expect("egd boundary setting is well-formed")
}

/// Boundary setting 2: Σst/Σts satisfy (1) and (2.1); Σt holds full tgds
/// only.
///
/// ```text
/// Σst: S(z,w) → S2(z,w)
///      D(x,y) → ∃z ∃w P(x,z,y,w)
/// Σt:  P(x,z,y,w) ∧ P(x,z',y',w') → S2(z,z')
///      P(x,z,y,w) ∧ P(y,z',y',w') → S2(w,z')   (consistency, added)
/// Σts: S2(z,z') → S(z,z')
///      P(x,z,y,w) → E(z,w)
/// ```
pub fn full_tgd_boundary_setting() -> PdeSetting {
    PdeSetting::parse(
        "source D/2; source S/2; source E/2; target P/4; target S2/2;",
        "S(z, w) -> S2(z, w); D(x, y) -> exists z, w . P(x, z, y, w)",
        "S2(z, z2) -> S(z, z2); P(x, z, y, w) -> E(z, w)",
        "P(x, z, y, w), P(x, z2, y2, w2) -> S2(z, z2);
         P(x, z, y, w), P(y, z2, y2, w2) -> S2(w, z2)",
    )
    .expect("full-tgd boundary setting is well-formed")
}

/// Source instance for the egd boundary: `D` = inequality on `k` elements,
/// `E` = symmetric edges (no `S` — the egds replace it).
pub fn egd_boundary_instance(setting: &PdeSetting, g: &Graph, k: u32) -> Instance {
    let mut src = String::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                src.push_str(&format!("D(elem{i}, elem{j}). "));
            }
        }
    }
    for (u, v) in g.edges() {
        src.push_str(&format!("E(v{u}, v{v}). E(v{v}, v{u}). "));
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

/// Source instance for the full-tgd boundary: `D` inequality, `S` identity
/// on `V`, `E` symmetric edges.
pub fn full_tgd_boundary_instance(setting: &PdeSetting, g: &Graph, k: u32) -> Instance {
    let mut src = String::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                src.push_str(&format!("D(elem{i}, elem{j}). "));
            }
        }
    }
    for v in 0..g.vertex_count() {
        src.push_str(&format!("S(v{v}, v{v}). "));
    }
    for (u, v) in g.edges() {
        src.push_str(&format!("E(v{u}, v{v}). E(v{v}, v{u}). "));
    }
    parse_instance(setting.schema(), &src).expect("generated instance parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::has_k_clique;
    use pde_core::{generic, GenericLimits};

    #[test]
    fn both_settings_are_in_ctract_shape_modulo_target_constraints() {
        for p in [egd_boundary_setting(), full_tgd_boundary_setting()] {
            let c = p.classification();
            // Σst/Σts satisfy conditions 1 and 2.1…
            assert!(c.ctract.holds1());
            assert!(c.ctract.holds2_1());
            assert!(c.ctract.in_ctract());
            // …but the target constraints put the setting outside the
            // scope of Theorem 4.
            assert!(c.has_target_constraints);
            assert!(!c.tractable());
            assert!(c.target_tgds_weakly_acyclic);
        }
    }

    #[test]
    fn egd_boundary_encodes_clique() {
        let p = egd_boundary_setting();
        for (g, k) in [
            (Graph::complete(3), 3u32),
            (Graph::path(3), 3),
            (Graph::cycle(4), 2),
            (Graph::complete_bipartite(2, 2), 3),
        ] {
            let input = egd_boundary_instance(&p, &g, k);
            let out = generic::solve(&p, &input, GenericLimits::default()).unwrap();
            assert_eq!(out.decided(), Some(has_k_clique(&g, k)), "k={k}");
        }
    }

    #[test]
    fn full_tgd_boundary_encodes_clique() {
        let p = full_tgd_boundary_setting();
        for (g, k) in [(Graph::complete(3), 3u32), (Graph::path(3), 3)] {
            let input = full_tgd_boundary_instance(&p, &g, k);
            let out = generic::solve(&p, &input, GenericLimits::default()).unwrap();
            assert_eq!(out.decided(), Some(has_k_clique(&g, k)), "k={k}");
        }
    }
}
