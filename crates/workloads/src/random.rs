//! Random PDE settings and instances, for differential testing.
//!
//! The strongest evidence that three very different solvers implement the
//! same semantics is agreement on inputs none of them was written for.
//! This module generates structurally valid random settings (safe tgds of
//! bounded shape over random schemas) and random ground instances, then
//! the test suites compare every applicable solver pairwise.

use pde_constraints::Tgd;
use pde_core::{PdeSetting, SettingError};
use pde_relational::{Atom, Conjunction, Instance, Peer, Schema, Term, Tuple, Value, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape parameters for random settings.
#[derive(Clone, Copy, Debug)]
pub struct RandomSettingParams {
    /// Number of source relations.
    pub source_rels: u32,
    /// Number of target relations.
    pub target_rels: u32,
    /// Maximum relation arity (min 1).
    pub max_arity: u16,
    /// Number of source-to-target tgds.
    pub n_st: u32,
    /// Number of target-to-source tgds.
    pub n_ts: u32,
    /// Maximum premise atoms per tgd.
    pub max_premise: u32,
    /// Maximum conclusion atoms per tgd.
    pub max_conclusion: u32,
    /// Maximum existential variables per tgd.
    pub max_existentials: u32,
}

impl Default for RandomSettingParams {
    fn default() -> Self {
        RandomSettingParams {
            source_rels: 2,
            target_rels: 2,
            max_arity: 2,
            n_st: 2,
            n_ts: 2,
            max_premise: 2,
            max_conclusion: 2,
            max_existentials: 1,
        }
    }
}

/// Generate a random schema per the parameters.
fn random_schema(params: &RandomSettingParams, rng: &mut StdRng) -> Arc<Schema> {
    let mut s = Schema::new();
    for i in 0..params.source_rels {
        s.source(format!("Src{i}"), rng.gen_range(1..=params.max_arity));
    }
    for i in 0..params.target_rels {
        s.target(format!("Tgt{i}"), rng.gen_range(1..=params.max_arity));
    }
    Arc::new(s)
}

/// A random safe tgd from `from`-side relations to `to`-side relations.
fn random_tgd(
    schema: &Schema,
    from: Peer,
    to: Peer,
    params: &RandomSettingParams,
    rng: &mut StdRng,
) -> Tgd {
    let from_rels: Vec<_> = schema.rels_of(from).collect();
    let to_rels: Vec<_> = schema.rels_of(to).collect();
    let var_pool: Vec<Var> = (0..6).map(|i| Var::new(format!("x{i}"))).collect();
    let n_prem = rng.gen_range(1..=params.max_premise.max(1));
    let mut premise = Vec::new();
    for _ in 0..n_prem {
        let rel = from_rels[rng.gen_range(0..from_rels.len())];
        let terms: Vec<Term> = (0..schema.arity(rel))
            .map(|_| Term::Var(var_pool[rng.gen_range(0..var_pool.len())]))
            .collect();
        premise.push(Atom::new(schema, rel, terms));
    }
    let premise = Conjunction::new(premise);
    let prem_vars: Vec<Var> = premise.variables().into_iter().collect();
    let n_ex = rng.gen_range(0..=params.max_existentials);
    let exvars: Vec<Var> = (0..n_ex).map(|i| Var::new(format!("e{i}"))).collect();
    let n_conc = rng.gen_range(1..=params.max_conclusion.max(1));
    // Conclusion terms draw from premise variables and the existentials;
    // every declared existential must be used, so seed a use-list.
    let mut must_use: Vec<Var> = exvars.clone();
    let mut conclusion = Vec::new();
    for _ in 0..n_conc {
        let rel = to_rels[rng.gen_range(0..to_rels.len())];
        let terms: Vec<Term> = (0..schema.arity(rel))
            .map(|_| {
                if let Some(v) = must_use.pop() {
                    Term::Var(v)
                } else if !exvars.is_empty() && rng.gen_bool(0.3) {
                    Term::Var(exvars[rng.gen_range(0..exvars.len())])
                } else {
                    Term::Var(prem_vars[rng.gen_range(0..prem_vars.len())])
                }
            })
            .collect();
        conclusion.push(Atom::new(schema, rel, terms));
    }
    // Existentials that did not fit (arities too small) are dropped.
    let used: std::collections::BTreeSet<Var> =
        conclusion.iter().flat_map(Atom::variables).collect();
    let existentials: Vec<Var> = exvars.into_iter().filter(|v| used.contains(v)).collect();
    Tgd::new(premise, existentials, Conjunction::new(conclusion))
}

/// Generate a random PDE setting with no target constraints.
pub fn random_setting(params: &RandomSettingParams, seed: u64) -> Result<PdeSetting, SettingError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = random_schema(params, &mut rng);
    let st: Vec<Tgd> = (0..params.n_st)
        .map(|_| random_tgd(&schema, Peer::Source, Peer::Target, params, &mut rng))
        .collect();
    let ts: Vec<Tgd> = (0..params.n_ts)
        .map(|_| random_tgd(&schema, Peer::Target, Peer::Source, params, &mut rng))
        .collect();
    PdeSetting::new(schema, st, ts, vec![])
}

/// Generate a random PDE setting whose Σt holds target tgds and whose
/// chased tgd set (Σst ∪ Σt) is weakly acyclic, by rejection sampling:
/// candidate Σt tgds that would introduce a special cycle are dropped.
///
/// Used by the certificate property tests — the static chase bound of
/// `pde_constraints::chase_bound` is only defined for weakly acyclic sets,
/// and these settings exercise nonzero position ranks (target-to-target
/// existentials chained behind Σst existentials).
pub fn random_weakly_acyclic_setting(
    params: &RandomSettingParams,
    n_target_tgds: u32,
    seed: u64,
) -> Result<PdeSetting, SettingError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = random_schema(params, &mut rng);
    let st: Vec<Tgd> = (0..params.n_st)
        .map(|_| random_tgd(&schema, Peer::Source, Peer::Target, params, &mut rng))
        .collect();
    let mut t: Vec<Tgd> = Vec::new();
    for _ in 0..n_target_tgds {
        let cand = random_tgd(&schema, Peer::Target, Peer::Target, params, &mut rng);
        let chased: Vec<&Tgd> = st.iter().chain(&t).chain(std::iter::once(&cand)).collect();
        if pde_constraints::is_weakly_acyclic(&schema, chased) {
            t.push(cand);
        }
    }
    let ts: Vec<Tgd> = (0..params.n_ts)
        .map(|_| random_tgd(&schema, Peer::Target, Peer::Source, params, &mut rng))
        .collect();
    let t = t
        .into_iter()
        .map(pde_constraints::Dependency::Tgd)
        .collect();
    PdeSetting::new(schema, st, ts, t)
}

/// Generate a random ground instance over the setting's schema.
///
/// `source_facts` and `target_facts` bound the respective fact counts;
/// values come from a pool of `domain` constants.
pub fn random_instance(
    setting: &PdeSetting,
    source_facts: u32,
    target_facts: u32,
    domain: u32,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = setting.schema();
    let mut inst = Instance::new(schema.clone());
    let consts: Vec<Value> = (0..domain.max(1))
        .map(|i| Value::constant(format!("c{i}")))
        .collect();
    let add = |peer: Peer, n: u32, rng: &mut StdRng, inst: &mut Instance| {
        let rels: Vec<_> = schema.rels_of(peer).collect();
        if rels.is_empty() {
            return;
        }
        for _ in 0..n {
            let rel = rels[rng.gen_range(0..rels.len())];
            let vals: Vec<Value> = (0..schema.arity(rel))
                .map(|_| consts[rng.gen_range(0..consts.len())])
                .collect();
            inst.insert(rel, Tuple::new(vals));
        }
    };
    add(Peer::Source, source_facts, &mut rng, &mut inst);
    add(Peer::Target, target_facts, &mut rng, &mut inst);
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_core::{assignment, generic, solution::is_solution, tractable, GenericLimits};

    #[test]
    fn random_settings_validate_and_are_deterministic() {
        let params = RandomSettingParams::default();
        for seed in 0..50 {
            let a = random_setting(&params, seed).expect("random settings are valid");
            let b = random_setting(&params, seed).expect("valid");
            assert_eq!(a.sigma_st().len(), b.sigma_st().len());
            for (x, y) in a.sigma_st().iter().zip(b.sigma_st()) {
                assert_eq!(x, y, "determinism per seed");
            }
        }
    }

    #[test]
    fn differential_assignment_vs_generic() {
        let params = RandomSettingParams::default();
        let lim = GenericLimits {
            max_nodes: 200_000,
            ..Default::default()
        };
        let mut decided = 0;
        for seed in 0..40u64 {
            let setting = random_setting(&params, seed).unwrap();
            let input = random_instance(&setting, 4, 2, 3, seed ^ 0xabcd);
            let a = assignment::solve(&setting, &input).unwrap();
            let g = generic::solve(&setting, &input, lim).unwrap();
            if let Some(gd) = g.decided() {
                decided += 1;
                assert_eq!(a.exists, gd, "seed {seed}\n{setting:?}\n{input:?}");
            }
            if let Some(w) = a.witness {
                assert!(is_solution(&setting, &input, &w), "seed {seed}");
            }
        }
        assert!(decided >= 30, "most random cases should be decided");
    }

    #[test]
    fn differential_tractable_when_classified() {
        let params = RandomSettingParams::default();
        let mut tractable_hits = 0;
        for seed in 0..120u64 {
            let setting = random_setting(&params, seed).unwrap();
            if !setting.classification().tractable() {
                continue;
            }
            tractable_hits += 1;
            let input = random_instance(&setting, 4, 2, 3, seed ^ 0x1234);
            let fast = tractable::exists_solution(&setting, &input).unwrap();
            let slow = assignment::solve(&setting, &input).unwrap();
            assert_eq!(
                fast.exists, slow.exists,
                "seed {seed}\n{setting:?}\n{input:?}"
            );
            if let Some(w) = fast.witness {
                assert!(is_solution(&setting, &input, &w), "seed {seed}");
            }
        }
        assert!(
            tractable_hits >= 10,
            "the generator should produce C_tract settings regularly (got {tractable_hits})"
        );
    }

    #[test]
    fn random_instances_respect_bounds() {
        let params = RandomSettingParams::default();
        let setting = random_setting(&params, 1).unwrap();
        let inst = random_instance(&setting, 5, 3, 4, 9);
        assert!(inst.fact_count() <= 8);
        assert!(inst.is_ground());
        assert!(inst.active_domain().len() <= 4);
    }
}
